"""Query evaluation engine and accuracy helpers.

:class:`QueryEngine` wires together an approximate method and an exact oracle
so experiments can run a workload once and collect both the approximate
answers and their true errors.  When the method exposes a batch interface
(``query_batch`` / ``exact_batch``, or explicit batch callables), the engine
answers the whole workload through the vectorized path and falls back to the
per-query loop otherwise — the scalar loop remains the correctness oracle.
:func:`evaluate_accuracy` summarizes the per-query errors (mean/median/max
absolute and relative error, guarantee violation count), which is what the
accuracy-oriented figures report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..config import Aggregate
from ..errors import NotSupportedError, QueryError
from .cache import CacheInfo, ResultCache
from .types import BatchQueryResult, Guarantee, QueryResult, RangeQuery, RangeQuery2D

__all__ = [
    "QueryEngine",
    "AccuracyReport",
    "evaluate_accuracy",
    "queries_to_bounds",
    "apply_kernel_knob",
]


def apply_kernel_knob(index: object, kernel: str, name: str = "method") -> None:
    """Select the batch-kernel backend on an index that exposes ``set_kernel``.

    ``kernel="auto"`` is a no-op (every method accepts it); any other value
    requires the index — or, for updatable wrappers that route batch answers
    through their base, ``index.base`` — to expose ``set_kernel`` and raises
    :class:`~repro.errors.QueryError` otherwise.  Shared by
    :meth:`QueryEngine.for_index` and the serving layer's
    :class:`~repro.serve.host.EngineHost` so both wire the knob identically.
    """
    if kernel == "auto":
        return
    set_kernel = getattr(index, "set_kernel", None)
    if set_kernel is None:
        # Updatable wrappers route batch answers through their base index;
        # the knob lands there.
        set_kernel = getattr(getattr(index, "base", None), "set_kernel", None)
    if set_kernel is None:
        raise QueryError(
            f"method {name!r} has no kernel knob (set_kernel); "
            "only kernel='auto' is valid here"
        )
    set_kernel(kernel)


def queries_to_bounds(
    queries: Sequence[RangeQuery | RangeQuery2D],
) -> tuple[np.ndarray, ...]:
    """Transpose a workload into flat bound arrays for the batch APIs.

    One-key workloads become ``(lows, highs)``; two-key workloads become
    ``(x_lows, x_highs, y_lows, y_highs)``.  Mixed workloads are rejected.
    """
    if not queries:
        raise QueryError("empty workload")
    if all(isinstance(query, RangeQuery) for query in queries):
        lows = np.fromiter((query.low for query in queries), dtype=np.float64, count=len(queries))
        highs = np.fromiter((query.high for query in queries), dtype=np.float64, count=len(queries))
        return lows, highs
    if all(isinstance(query, RangeQuery2D) for query in queries):
        n = len(queries)
        return (
            np.fromiter((query.x_low for query in queries), dtype=np.float64, count=n),
            np.fromiter((query.x_high for query in queries), dtype=np.float64, count=n),
            np.fromiter((query.y_low for query in queries), dtype=np.float64, count=n),
            np.fromiter((query.y_high for query in queries), dtype=np.float64, count=n),
        )
    raise QueryError("workload mixes one-key and two-key queries")


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate error statistics over a workload.

    Attributes
    ----------
    num_queries:
        Number of evaluated queries.
    mean_absolute_error, max_absolute_error:
        Statistics of ``|approx - exact|``.
    mean_relative_error, median_relative_error, max_relative_error:
        Statistics of ``|approx - exact| / exact`` over queries with a
        non-zero exact answer; NaN when no query has one (relative error is
        undefined there, and reporting 0.0 would overstate accuracy).
    guarantee_violations:
        Number of queries whose result violated the requested guarantee
        (always 0 for correctly implemented guaranteed methods).
    fallback_rate:
        Fraction of queries answered by the exact fallback.
    """

    num_queries: int
    mean_absolute_error: float
    max_absolute_error: float
    mean_relative_error: float
    median_relative_error: float
    max_relative_error: float
    guarantee_violations: int
    fallback_rate: float


class QueryEngine:
    """Pairs an approximate method with an exact oracle for experiments.

    Parameters
    ----------
    approximate:
        Callable mapping a query (and optional guarantee) to a
        :class:`QueryResult` or a plain float.
    exact:
        Callable mapping a query to the exact answer.
    name:
        Label used in reports.
    approximate_batch:
        Optional vectorized method: called with the flat bound arrays of the
        whole workload (plus the guarantee when one is requested) and
        returning a :class:`BatchQueryResult` or a plain ndarray of values.
    exact_batch:
        Optional vectorized oracle: called with the flat bound arrays and
        returning an ndarray of exact answers.
    expected_aggregate:
        Aggregate the batch callables answer.  Batch calls drop the
        per-query ``aggregate`` field (bounds only), so without this the
        engine cannot reproduce the scalar path's aggregate-mismatch check;
        :meth:`for_index` fills it from ``index.aggregate`` automatically.
    cache_size:
        When > 0, memoize up to that many batch answers in an LRU keyed on
        ``(index version, guarantee, bounds)``.  Hits skip the method
        entirely; a write to an updatable index bumps its version so stale
        answers can never be served.  0 (the default) disables caching.
    version_provider:
        Zero-argument callable returning the index's current write version
        for the cache key.  ``None`` keys every entry on version 0, which is
        correct for immutable indexes only; :meth:`for_index` wires the
        live index's ``version`` counter automatically.
    """

    def __init__(
        self,
        approximate: Callable[..., QueryResult | float],
        exact: Callable[[RangeQuery | RangeQuery2D], float],
        name: str = "method",
        *,
        approximate_batch: Callable[..., BatchQueryResult | np.ndarray] | None = None,
        exact_batch: Callable[..., np.ndarray] | None = None,
        expected_aggregate: Aggregate | None = None,
        cache_size: int = 0,
        version_provider: Callable[[], int] | None = None,
    ) -> None:
        self._approximate = approximate
        self._exact = exact
        self._approximate_batch = approximate_batch
        self._exact_batch = exact_batch
        self._expected_aggregate = expected_aggregate
        self._sharded = None
        self._cache = ResultCache(cache_size) if cache_size > 0 else None
        self._version_provider = version_provider
        self.name = name

    @classmethod
    def for_index(
        cls,
        index: object,
        name: str = "method",
        *,
        num_shards: int = 1,
        executor: str = "thread",
        kernel: str = "auto",
        cache_size: int = 0,
    ) -> "QueryEngine":
        """Wire an engine from an index object, auto-detecting batch support.

        Uses ``index.query`` / ``index.exact`` and, when present,
        ``index.query_batch`` / ``index.exact_batch`` (the interface exposed
        by :class:`~repro.index.PolyFitIndex`, :class:`PolyFit2DIndex`, the
        RMI and the FITing-tree).

        With ``num_shards > 1`` the batch callables are routed through a
        :class:`~repro.queries.sharding.ShardedQueryEngine`, which splits
        large workloads into ``num_shards`` chunks fanned out over the
        chosen ``executor`` ("thread" or "process") and merged in input
        order; results stay bit-identical to the serial path.  Call
        :meth:`close` to release the worker pool, or use the engine as a
        context manager.

        Updatable indexes (anything exposing ``snapshot()``, e.g.
        :class:`~repro.stream.updatable.UpdatablePolyFitIndex`) already
        route their batch path through a frozen per-epoch overlay; the
        sharded path additionally pins the overlay of the epoch current at
        engine construction — for *every* callable, scalar included, so the
        batch/scalar oracle equivalence holds and every worker serves one
        consistent snapshot even while the index keeps absorbing writes.

        ``kernel`` selects the batch-kernel backend on indexes that expose
        ``set_kernel`` ("auto"/"numba"/"numpy"); the default "auto" leaves
        the index's own default in place, so it is safe for every method.
        ``cache_size`` > 0 enables the epoch-keyed LRU result cache (see
        :class:`~repro.queries.cache.ResultCache`); the cache key uses the
        *live* index's write version, captured before any snapshot pinning,
        so inserts and compactions invalidate cached answers even when the
        batch path serves a frozen overlay.
        """
        apply_kernel_knob(index, kernel, name)
        # Capture the version source before any snapshot rebinding below:
        # the cache must observe the live index's writes, not the frozen
        # overlay's constant epoch.
        version_provider = None
        if cache_size > 0 and hasattr(index, "version"):
            version_source = index
            version_provider = lambda: version_source.version  # noqa: E731
        approximate_batch = getattr(index, "query_batch", None)
        exact_batch = getattr(index, "exact_batch", None)
        sharded = None
        if num_shards > 1 and approximate_batch is not None:
            from .sharding import ShardedQueryEngine

            snapshot = getattr(index, "snapshot", None)
            if callable(snapshot):
                # Pin one epoch for scalar and batch alike: a live scalar
                # path next to a frozen batch path would let the two
                # diverge after an insert.
                index = snapshot()
                exact_batch = getattr(index, "exact_batch", None)
            sharded = ShardedQueryEngine(
                index=index, num_shards=num_shards, executor=executor, kernel=kernel
            )
            approximate_batch = sharded.query_batch
            if exact_batch is not None:
                exact_batch = sharded.exact_batch
        engine = cls(
            approximate=index.query,  # type: ignore[attr-defined]
            exact=index.exact,  # type: ignore[attr-defined]
            name=name,
            approximate_batch=approximate_batch,
            exact_batch=exact_batch,
            expected_aggregate=getattr(index, "aggregate", None),
            cache_size=cache_size,
            version_provider=version_provider,
        )
        engine._sharded = sharded
        return engine

    def close(self) -> None:
        """Release the sharded worker pool, if one was wired in (idempotent)."""
        if self._sharded is not None:
            self._sharded.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def supports_batch(self) -> bool:
        """Whether a vectorized method callable is wired in."""
        return self._approximate_batch is not None

    def cache_info(self) -> CacheInfo | None:
        """Hit/miss counters and occupancy of the result cache (None if off)."""
        return None if self._cache is None else self._cache.info()

    def cache_clear(self) -> None:
        """Drop cached batch answers and reset the counters (no-op if off)."""
        if self._cache is not None:
            self._cache.clear()

    def _call_batch(
        self,
        bounds: tuple[np.ndarray, ...],
        guarantee: Guarantee | None,
    ) -> BatchQueryResult | np.ndarray:
        """Invoke the batch method through the result cache, when enabled."""
        assert self._approximate_batch is not None
        if self._cache is None:
            if guarantee is None:
                return self._approximate_batch(*bounds)
            return self._approximate_batch(*bounds, guarantee)
        version = 0 if self._version_provider is None else self._version_provider()
        key = ResultCache.make_key(version, guarantee, bounds)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if guarantee is None:
            answer = self._approximate_batch(*bounds)
        else:
            answer = self._approximate_batch(*bounds, guarantee)
        self._cache.put(key, answer)
        return answer

    def run(
        self,
        queries: Sequence[RangeQuery | RangeQuery2D],
        guarantee: Guarantee | None = None,
        *,
        prefer_batch: bool = True,
    ) -> list[tuple[QueryResult, float]]:
        """Evaluate all queries, returning (approximate result, exact answer) pairs.

        The batch path is used when available (and ``prefer_batch`` is kept);
        pass ``prefer_batch=False`` to force the per-query loop, e.g. when
        using the scalar path as the correctness oracle for the batch one.
        """
        if not queries:
            raise QueryError("empty workload")
        if prefer_batch and self._approximate_batch is not None:
            return self._run_batch(queries, guarantee)
        return self._run_scalar(queries, guarantee)

    def _run_scalar(
        self,
        queries: Sequence[RangeQuery | RangeQuery2D],
        guarantee: Guarantee | None,
    ) -> list[tuple[QueryResult, float]]:
        results: list[tuple[QueryResult, float]] = []
        for query in queries:
            if guarantee is None:
                raw = self._approximate(query)
            else:
                raw = self._approximate(query, guarantee)
            if not isinstance(raw, QueryResult):
                raw = QueryResult(value=float(raw), guaranteed=False)
            results.append((raw, float(self._exact(query))))
        return results

    def _run_batch(
        self,
        queries: Sequence[RangeQuery | RangeQuery2D],
        guarantee: Guarantee | None,
    ) -> list[tuple[QueryResult, float]]:
        # Batch calls carry only the bounds, so the per-query aggregate check
        # the scalar path performs must happen here.
        aggregates = {query.aggregate for query in queries}
        if self._expected_aggregate is not None:
            mismatched = aggregates - {self._expected_aggregate}
            if mismatched:
                raise NotSupportedError(
                    f"method {self.name!r} answers {self._expected_aggregate.value} "
                    f"queries, workload contains {sorted(a.value for a in mismatched)}"
                )
        elif len(aggregates) > 1:
            # Unknown method aggregate and a heterogeneous workload: only the
            # scalar path preserves each query's aggregate.
            return self._run_scalar(queries, guarantee)
        bounds = queries_to_bounds(queries)
        raw = self._call_batch(bounds, guarantee)
        if isinstance(raw, BatchQueryResult):
            results = raw.to_results()
        else:
            values = np.asarray(raw, dtype=np.float64)
            results = [QueryResult(value=float(v), guaranteed=False) for v in values]
        if len(results) != len(queries):
            raise QueryError("batch method returned a mismatched number of answers")
        if self._exact_batch is not None:
            exacts = np.asarray(self._exact_batch(*bounds), dtype=np.float64)
        else:
            exacts = np.array([float(self._exact(query)) for query in queries])
        return list(zip(results, exacts.tolist()))

    def run_batch_raw(
        self,
        queries: Sequence[RangeQuery | RangeQuery2D],
        guarantee: Guarantee | None = None,
    ) -> BatchQueryResult | np.ndarray:
        """The raw columnar batch answer, without per-query materialization.

        This is the zero-overhead entry point the throughput benchmarks time;
        :meth:`run` converts the same answer into (result, exact) pairs.
        """
        if self._approximate_batch is None:
            raise QueryError(f"method {self.name!r} has no batch interface")
        return self._call_batch(queries_to_bounds(queries), guarantee)

    def accuracy(
        self,
        queries: Sequence[RangeQuery | RangeQuery2D],
        guarantee: Guarantee | None = None,
    ) -> AccuracyReport:
        """Evaluate all queries and summarize the errors."""
        return evaluate_accuracy(self.run(queries, guarantee), guarantee)


def evaluate_accuracy(
    pairs: Sequence[tuple[QueryResult, float]],
    guarantee: Guarantee | None = None,
) -> AccuracyReport:
    """Summarize (result, exact) pairs into an :class:`AccuracyReport`."""
    if not pairs:
        raise QueryError("no results to evaluate")
    absolute_errors = []
    relative_errors = []
    violations = 0
    fallbacks = 0
    for result, exact in pairs:
        if np.isnan(result.value) and np.isnan(exact):
            absolute_errors.append(0.0)
            continue
        error = abs(result.value - exact)
        absolute_errors.append(error)
        if exact != 0 and not np.isnan(exact):
            relative_errors.append(error / abs(exact))
        if result.exact_fallback:
            fallbacks += 1
        if guarantee is not None and result.guaranteed and not guarantee.satisfied_by(
            result.value, exact
        ):
            violations += 1
    absolute = np.asarray(absolute_errors, dtype=np.float64)
    if relative_errors:
        relative = np.asarray(relative_errors, dtype=np.float64)
        mean_relative = float(relative.mean())
        median_relative = float(np.median(relative))
        max_relative = float(relative.max())
    else:
        # No query has a non-zero exact answer: relative error is undefined,
        # and a 0.0 placeholder would read as "perfect accuracy".
        mean_relative = median_relative = max_relative = float("nan")
    return AccuracyReport(
        num_queries=len(pairs),
        mean_absolute_error=float(absolute.mean()),
        max_absolute_error=float(absolute.max()),
        mean_relative_error=mean_relative,
        median_relative_error=median_relative,
        max_relative_error=max_relative,
        guarantee_violations=violations,
        fallback_rate=fallbacks / len(pairs),
    )
