"""Query evaluation engine and accuracy helpers.

:class:`QueryEngine` wires together an approximate method and an exact oracle
so experiments can run a workload once and collect both the approximate
answers and their true errors.  :func:`evaluate_accuracy` summarizes the
per-query errors (mean/median/max absolute and relative error, guarantee
violation count), which is what the accuracy-oriented figures report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import QueryError
from .types import Guarantee, QueryResult, RangeQuery, RangeQuery2D

__all__ = ["QueryEngine", "AccuracyReport", "evaluate_accuracy"]


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate error statistics over a workload.

    Attributes
    ----------
    num_queries:
        Number of evaluated queries.
    mean_absolute_error, max_absolute_error:
        Statistics of ``|approx - exact|``.
    mean_relative_error, median_relative_error, max_relative_error:
        Statistics of ``|approx - exact| / exact`` over queries with a
        non-zero exact answer.
    guarantee_violations:
        Number of queries whose result violated the requested guarantee
        (always 0 for correctly implemented guaranteed methods).
    fallback_rate:
        Fraction of queries answered by the exact fallback.
    """

    num_queries: int
    mean_absolute_error: float
    max_absolute_error: float
    mean_relative_error: float
    median_relative_error: float
    max_relative_error: float
    guarantee_violations: int
    fallback_rate: float


class QueryEngine:
    """Pairs an approximate method with an exact oracle for experiments.

    Parameters
    ----------
    approximate:
        Callable mapping a query (and optional guarantee) to a
        :class:`QueryResult` or a plain float.
    exact:
        Callable mapping a query to the exact answer.
    name:
        Label used in reports.
    """

    def __init__(
        self,
        approximate: Callable[..., QueryResult | float],
        exact: Callable[[RangeQuery | RangeQuery2D], float],
        name: str = "method",
    ) -> None:
        self._approximate = approximate
        self._exact = exact
        self.name = name

    def run(
        self,
        queries: Sequence[RangeQuery | RangeQuery2D],
        guarantee: Guarantee | None = None,
    ) -> list[tuple[QueryResult, float]]:
        """Evaluate all queries, returning (approximate result, exact answer) pairs."""
        if not queries:
            raise QueryError("empty workload")
        results: list[tuple[QueryResult, float]] = []
        for query in queries:
            if guarantee is None:
                raw = self._approximate(query)
            else:
                raw = self._approximate(query, guarantee)
            if not isinstance(raw, QueryResult):
                raw = QueryResult(value=float(raw), guaranteed=False)
            results.append((raw, float(self._exact(query))))
        return results

    def accuracy(
        self,
        queries: Sequence[RangeQuery | RangeQuery2D],
        guarantee: Guarantee | None = None,
    ) -> AccuracyReport:
        """Evaluate all queries and summarize the errors."""
        return evaluate_accuracy(self.run(queries, guarantee), guarantee)


def evaluate_accuracy(
    pairs: Sequence[tuple[QueryResult, float]],
    guarantee: Guarantee | None = None,
) -> AccuracyReport:
    """Summarize (result, exact) pairs into an :class:`AccuracyReport`."""
    if not pairs:
        raise QueryError("no results to evaluate")
    absolute_errors = []
    relative_errors = []
    violations = 0
    fallbacks = 0
    for result, exact in pairs:
        if np.isnan(result.value) and np.isnan(exact):
            absolute_errors.append(0.0)
            continue
        error = abs(result.value - exact)
        absolute_errors.append(error)
        if exact != 0 and not np.isnan(exact):
            relative_errors.append(error / abs(exact))
        if result.exact_fallback:
            fallbacks += 1
        if guarantee is not None and result.guaranteed and not guarantee.satisfied_by(
            result.value, exact
        ):
            violations += 1
    absolute = np.asarray(absolute_errors, dtype=np.float64)
    relative = np.asarray(relative_errors, dtype=np.float64) if relative_errors else np.zeros(1)
    return AccuracyReport(
        num_queries=len(pairs),
        mean_absolute_error=float(absolute.mean()),
        max_absolute_error=float(absolute.max()),
        mean_relative_error=float(relative.mean()),
        median_relative_error=float(np.median(relative)),
        max_relative_error=float(relative.max()),
        guarantee_violations=violations,
        fallback_rate=fallbacks / len(pairs),
    )
