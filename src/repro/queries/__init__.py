"""Query types, workload generators and the evaluation engine."""

from .types import RangeQuery, RangeQuery2D, QueryResult, BatchQueryResult, Guarantee
from .workloads import (
    generate_range_queries,
    generate_rectangle_queries,
    WorkloadSpec,
)
from .engine import QueryEngine, evaluate_accuracy, queries_to_bounds
from .sharding import ShardedQueryEngine, shard_slices

__all__ = [
    "ShardedQueryEngine",
    "shard_slices",
    "RangeQuery",
    "RangeQuery2D",
    "QueryResult",
    "BatchQueryResult",
    "Guarantee",
    "generate_range_queries",
    "generate_rectangle_queries",
    "WorkloadSpec",
    "QueryEngine",
    "evaluate_accuracy",
    "queries_to_bounds",
]
