"""Query types, workload generators and the evaluation engine."""

from .types import RangeQuery, RangeQuery2D, QueryResult, Guarantee
from .workloads import (
    generate_range_queries,
    generate_rectangle_queries,
    WorkloadSpec,
)
from .engine import QueryEngine, evaluate_accuracy

__all__ = [
    "RangeQuery",
    "RangeQuery2D",
    "QueryResult",
    "Guarantee",
    "generate_range_queries",
    "generate_rectangle_queries",
    "WorkloadSpec",
    "QueryEngine",
    "evaluate_accuracy",
]
