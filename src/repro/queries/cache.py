"""Epoch-keyed LRU cache for batch query answers.

Dashboard-style workloads re-issue the same rectangle bounds against a
slowly changing index.  :class:`ResultCache` memoizes whole-batch answers
keyed on ``(version, guarantee, bounds)``: the version component comes from
the index's monotone write counter, so a hit is only possible against the
exact index state that produced the cached answer — an insert or compaction
bumps the version and every stale entry becomes unreachable (and ages out of
the LRU ring).  No explicit invalidation hook is needed, which keeps the
cache safe to wire around any index, updatable or frozen.

Cached answers are returned by reference; callers must treat them as
read-only (the engine's consumers already do — they only ever read the
columnar arrays).

The cache is thread-safe: the serving front-end
(:mod:`repro.serve`) flushes coalesced batches on executor threads, so
lookups, insertions and evictions from different flushes may interleave.
A single lock around each operation keeps the OrderedDict bookkeeping
consistent; the per-call cost is negligible next to a batch evaluation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.obs.metrics import counter_family, gauge_family

from .types import BatchQueryResult, Guarantee

__all__ = ["CacheInfo", "ResultCache"]


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time cache statistics (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never probed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly form (counters plus the derived hit rate), for the
        server's ``/stats`` endpoint and the bench artifacts."""
        return {**asdict(self), "hit_rate": round(self.hit_rate, 4)}


class ResultCache:
    """Bounded LRU over batch answers, keyed by index version and bounds.

    Parameters
    ----------
    maxsize:
        Maximum number of cached batch answers (one entry per distinct
        workload, not per query).  Must be >= 1; the engine simply does not
        construct a cache when caching is disabled.
    """

    def __init__(self, maxsize: int, *, instrument: bool = True) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, BatchQueryResult | np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        # Hit/miss/eviction counts live in metric instruments so the
        # registry (`/metrics`) and `CacheInfo` (`/stats`) read the same
        # source and can never disagree.
        self._fam_hits = counter_family(
            "repro_cache_hits_total", "Result-cache lookups served from cache", enabled=instrument
        )
        self._fam_misses = counter_family(
            "repro_cache_misses_total", "Result-cache lookups that missed", enabled=instrument
        )
        self._fam_evictions = counter_family(
            "repro_cache_evictions_total", "Result-cache entries evicted by LRU pressure", enabled=instrument
        )
        self._fam_entries = gauge_family(
            "repro_cache_entries", "Result-cache entries currently resident", enabled=instrument
        )
        self._hits = self._fam_hits.labels()
        self._misses = self._fam_misses.labels()
        self._evictions = self._fam_evictions.labels()
        self._currsize = self._fam_entries.labels()

    def metrics_families(self) -> list:
        """The cache's metric families, for registry registration."""
        fams = [self._fam_hits, self._fam_misses, self._fam_evictions, self._fam_entries]
        return [f for f in fams if getattr(f, "enabled", False)]

    @staticmethod
    def make_key(
        version: int,
        guarantee: Guarantee | None,
        bounds: Sequence[np.ndarray],
    ) -> tuple:
        """Build the lookup key for one batch call.

        The bounds arrays are hashed by their raw bytes — two workloads with
        bit-identical bounds (including NaN payloads, which compare unequal
        but hash equal) share an entry; anything else cannot collide.
        ``Guarantee`` is a frozen dataclass and hashes by value.
        """
        return (
            int(version),
            guarantee,
            tuple(np.ascontiguousarray(b).tobytes() for b in bounds),
        )

    def get(self, key: tuple) -> BatchQueryResult | np.ndarray | None:
        """Return the cached answer for ``key``, or None; updates counters."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry

    def put(self, key: tuple, value: BatchQueryResult | np.ndarray) -> None:
        """Insert an answer, evicting the least recently used entry if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions.inc()
            self._currsize.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits.reset()
            self._misses.reset()
            self._currsize.set(0)

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=int(self._hits.value),
                misses=int(self._misses.value),
                maxsize=self._maxsize,
                currsize=len(self._entries),
                evictions=int(self._evictions.value),
            )
