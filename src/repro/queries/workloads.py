"""Workload generators.

The paper's evaluation uses 1000 randomly generated queries per experiment:

* one-key case — two keys from the dataset are drawn at random as the start
  and end of each query interval,
* two-key case — rectangles sampled uniformly over the bounding box.

These generators reproduce both, plus a width-controlled variant used by the
examples and by accuracy experiments that need a minimum selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Aggregate
from ..errors import DataError
from .types import RangeQuery, RangeQuery2D

__all__ = ["WorkloadSpec", "generate_range_queries", "generate_rectangle_queries"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of a generated workload (recorded by the bench harness)."""

    name: str
    num_queries: int
    aggregate: Aggregate
    seed: int
    dataset: str = ""
    notes: str = ""


def generate_range_queries(
    keys: np.ndarray,
    num_queries: int = 1000,
    aggregate: Aggregate = Aggregate.COUNT,
    *,
    seed: int = 123,
    min_width_fraction: float = 0.0,
) -> list[RangeQuery]:
    """Generate one-key range queries by sampling key pairs from the dataset.

    Parameters
    ----------
    keys:
        Dataset keys; query endpoints are drawn from these values so queries
        land where data lives (matching the paper's protocol).
    num_queries:
        Number of queries.
    aggregate:
        Aggregate attached to every query.
    seed:
        RNG seed.
    min_width_fraction:
        Lower bound on the query width as a fraction of the key span; 0 keeps
        the paper's unconstrained sampling.

    Returns
    -------
    list[RangeQuery]
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.size < 2:
        raise DataError("need at least two keys to generate range queries")
    if num_queries <= 0:
        raise DataError("num_queries must be positive")
    if not 0.0 <= min_width_fraction < 1.0:
        raise DataError("min_width_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    span = float(keys[-1] - keys[0]) if keys[-1] > keys[0] else 1.0
    min_width = span * min_width_fraction

    queries: list[RangeQuery] = []
    while len(queries) < num_queries:
        a, b = rng.choice(keys, size=2, replace=False)
        low, high = (float(a), float(b)) if a <= b else (float(b), float(a))
        if high - low < min_width:
            continue
        queries.append(RangeQuery(low=low, high=high, aggregate=aggregate))
    return queries


def generate_rectangle_queries(
    xs: np.ndarray,
    ys: np.ndarray,
    num_queries: int = 1000,
    aggregate: Aggregate = Aggregate.COUNT,
    *,
    seed: int = 321,
    max_extent_fraction: float = 0.25,
) -> list[RangeQuery2D]:
    """Generate two-key rectangle queries uniformly over the bounding box.

    Rectangle corners are sampled uniformly; each side length is capped at
    ``max_extent_fraction`` of the corresponding bounding-box side so the
    workload contains a mix of selectivities (the paper samples rectangles
    uniformly; the cap keeps counts in a comparable range at reduced dataset
    scale).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size == 0 or ys.size == 0:
        raise DataError("cannot generate rectangle queries over an empty point set")
    if xs.size != ys.size:
        raise DataError("x and y arrays must have equal length")
    if num_queries <= 0:
        raise DataError("num_queries must be positive")
    if not 0.0 < max_extent_fraction <= 1.0:
        raise DataError("max_extent_fraction must be in (0, 1]")

    rng = np.random.default_rng(seed)
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(ys.min()), float(ys.max())
    x_span = max(x_max - x_min, 1e-12)
    y_span = max(y_max - y_min, 1e-12)

    queries: list[RangeQuery2D] = []
    for _ in range(num_queries):
        width = rng.uniform(0.01, max_extent_fraction) * x_span
        height = rng.uniform(0.01, max_extent_fraction) * y_span
        x_low = rng.uniform(x_min, x_max - width)
        y_low = rng.uniform(y_min, y_max - height)
        queries.append(
            RangeQuery2D(
                x_low=float(x_low),
                x_high=float(x_low + width),
                y_low=float(y_low),
                y_high=float(y_low + height),
                aggregate=aggregate,
            )
        )
    return queries
