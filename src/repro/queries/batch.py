"""Shared vectorized guarantee resolution for the batch query APIs.

PolyFit (1D/2D), the RMI and the FITing-tree all answer batches with the
same shape of logic: an absolute guarantee is a construction-time constant
check, the relative-error certificate (Lemmas 3/5/7) is one array comparison
``approx >= bound * (1 + 1/eps)``, and only the failing subset takes the
masked exact pass.  Centralizing it here keeps the four implementations in
lock-step with their scalar oracles — a certificate fix lands everywhere at
once.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..config import GuaranteeKind
from ..errors import QueryError
from .types import BatchQueryResult, Guarantee

__all__ = [
    "DEFAULT_TILE_SIZE",
    "iter_tiles",
    "validate_bounds_batch",
    "resolve_batch_certificates",
]

#: Default number of queries per tile for batch paths that materialize
#: per-query transient arrays (e.g. the 2-D 4-corner gather).  131072 queries
#: keep every transient under a few tens of MiB while leaving the workload
#: large enough that the per-call NumPy dispatch overhead stays amortized.
DEFAULT_TILE_SIZE = 131_072


def iter_tiles(total: int, tile_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(total)`` in bounded tiles.

    The batch engines use this to bound peak transient memory on very large
    workloads: the tile loop runs ``ceil(total / tile_size)`` times, never
    once per query.  Yields nothing for an empty workload.  A bad
    ``tile_size`` is rejected eagerly at call time, not at first iteration.
    """
    if tile_size < 1:
        raise QueryError(f"tile_size must be >= 1, got {tile_size}")

    def tiles() -> Iterator[tuple[int, int]]:
        for start in range(0, total, tile_size):
            yield start, min(start + tile_size, total)

    return tiles()


def validate_bounds_batch(
    lows: np.ndarray, highs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce and validate batch range bounds (same checks as the scalar path)."""
    lows = np.atleast_1d(np.asarray(lows, dtype=np.float64))
    highs = np.atleast_1d(np.asarray(highs, dtype=np.float64))
    if lows.ndim != 1 or lows.shape != highs.shape:
        raise QueryError("lows and highs must be equal-length 1-D arrays")
    if np.any(highs < lows):
        raise QueryError("invalid range: high < low")
    return lows, highs


def resolve_batch_certificates(
    approx: np.ndarray,
    *,
    error_bound: float | np.ndarray,
    guarantee: Guarantee | None,
    exact_for_mask: Callable[[np.ndarray], np.ndarray],
    absolute_fallback: bool,
    certified: np.ndarray | None = None,
) -> BatchQueryResult:
    """Apply guarantee semantics to a batch of approximate answers.

    Parameters
    ----------
    approx:
        The ``(N,)`` approximate answers.
    error_bound:
        The certified absolute bound ``c * delta`` of the answering
        structure: a scalar when the bound is a construction-time constant
        (one index), or an ``(N,)`` array when it varies per query (e.g. a
        partitioned fleet, where a query's bound is the sum of the certified
        bounds of the partitions it straddles).
    guarantee:
        The requested guarantee, or ``None`` for best-effort answers.
    exact_for_mask:
        Callable mapping a boolean mask to the exact answers of the selected
        queries; invoked only for queries that need the exact fallback.
    absolute_fallback:
        What to do when an absolute guarantee cannot be met from the built
        structure: ``True`` answers exactly (RMI/FITing-tree semantics),
        ``False`` returns the approximation flagged un-guaranteed (PolyFit
        semantics — the index was built with a looser budget than requested).
        With per-query bounds the decision is per query: only the queries
        whose own bound exceeds the budget fall back / lose the flag.
    certified:
        Optional precomputed relative-certificate mask
        (``approx >= error_bound * (1 + 1/eps)``), supplied by fused kernels
        that evaluate the comparison inside the same compiled pass.  Ignored
        unless the guarantee is relative; when omitted the comparison runs
        here.

    NaN approximations (empty MAX/MIN ranges) fail the relative certificate
    comparison and take the exact path, matching the scalar implementations.
    """
    approx = np.asarray(approx, dtype=np.float64)
    n = approx.size
    bounds = np.empty(n, dtype=np.float64)
    bounds[:] = error_bound  # broadcasts a scalar, copies an (N,) array
    no_fallback = np.zeros(n, dtype=bool)

    if guarantee is None:
        return BatchQueryResult(approx, np.ones(n, dtype=bool), no_fallback, bounds)

    if guarantee.kind is GuaranteeKind.ABSOLUTE:
        met = bounds <= guarantee.epsilon + 1e-12
        if met.all():
            return BatchQueryResult(approx, np.ones(n, dtype=bool), no_fallback, bounds)
        if not absolute_fallback:
            return BatchQueryResult(approx, met, no_fallback, bounds)
        fallback = ~met
        values = approx.copy()
        values[fallback] = exact_for_mask(fallback)
        bounds[fallback] = 0.0
        return BatchQueryResult(values, np.ones(n, dtype=bool), fallback, bounds)

    if certified is None:
        threshold = bounds * (1.0 + 1.0 / guarantee.epsilon)
        with np.errstate(invalid="ignore"):
            certified = approx >= threshold
    else:
        certified = np.asarray(certified, dtype=bool)
        if certified.shape != approx.shape:
            raise QueryError("certified mask must match the approx answers")
    fallback = ~certified
    values = approx.copy()
    if np.any(fallback):
        values[fallback] = exact_for_mask(fallback)
        bounds[fallback] = 0.0
    return BatchQueryResult(values, np.ones(n, dtype=bool), fallback, bounds)
