"""In-memory B+tree substrate.

A stand-in for the STX B+tree used by the paper's S-tree heuristic, and a
generally useful ordered-map substrate.  Leaves hold sorted (key, value)
pairs and are linked; internal nodes hold separator keys.  The tree supports
point lookup, insertion, range iteration, and range aggregation over an
optional per-leaf prefix cache.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from ..errors import DataError, QueryError

__all__ = ["BPlusTree"]


class _LeafNode:
    """Leaf node: sorted keys with parallel values and a next-leaf link."""

    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[float] = []
        self.values: list[float] = []
        self.next: _LeafNode | None = None

    @property
    def is_leaf(self) -> bool:
        return True


class _InternalNode:
    """Internal node: separator keys and child pointers."""

    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[float] = []
        self.children: list[object] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree:
    """A simple order-``branching_factor`` B+tree over float keys.

    Parameters
    ----------
    branching_factor:
        Maximum number of children per internal node (and keys per leaf).
    """

    def __init__(self, branching_factor: int = 64) -> None:
        if branching_factor < 4:
            raise DataError("branching_factor must be >= 4")
        self._order = branching_factor
        self._root: _LeafNode | _InternalNode = _LeafNode()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_sorted(
        cls,
        keys: np.ndarray,
        values: np.ndarray | None = None,
        branching_factor: int = 64,
    ) -> "BPlusTree":
        """Bulk-load from sorted keys (values default to 1.0)."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size == 0:
            raise DataError("cannot bulk-load an empty key set")
        if np.any(np.diff(keys) < 0):
            raise DataError("keys must be sorted ascending for bulk loading")
        if values is None:
            values = np.ones_like(keys)
        values = np.asarray(values, dtype=np.float64)
        if values.size != keys.size:
            raise DataError("keys and values must have equal length")

        tree = cls(branching_factor=branching_factor)
        leaf_capacity = branching_factor
        leaves: list[_LeafNode] = []
        for start in range(0, keys.size, leaf_capacity):
            leaf = _LeafNode()
            leaf.keys = keys[start: start + leaf_capacity].tolist()
            leaf.values = values[start: start + leaf_capacity].tolist()
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        tree._size = int(keys.size)

        level: list[_LeafNode | _InternalNode] = list(leaves)
        height = 1
        while len(level) > 1:
            parents: list[_InternalNode] = []
            for start in range(0, len(level), branching_factor):
                group = level[start: start + branching_factor]
                parent = _InternalNode()
                parent.children = list(group)
                parent.keys = [tree._subtree_min(child) for child in group[1:]]
                parents.append(parent)
            level = list(parents)
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    def _subtree_min(self, node: _LeafNode | _InternalNode) -> float:
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node.keys[0]  # type: ignore[union-attr]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, key: float, value: float = 1.0) -> None:
        """Insert a (key, value) pair; duplicate keys are allowed."""
        split = self._insert_into(self._root, float(key), float(value))
        if split is not None:
            separator, right = split
            new_root = _InternalNode()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1

    def _insert_into(
        self, node: _LeafNode | _InternalNode, key: float, value: float
    ) -> tuple[float, _LeafNode | _InternalNode] | None:
        if node.is_leaf:
            leaf = node  # type: ignore[assignment]
            position = bisect_right(leaf.keys, key)
            leaf.keys.insert(position, key)
            leaf.values.insert(position, value)
            if len(leaf.keys) > self._order:
                return self._split_leaf(leaf)
            return None
        internal = node  # type: ignore[assignment]
        child_index = bisect_right(internal.keys, key)
        split = self._insert_into(internal.children[child_index], key, value)
        if split is None:
            return None
        separator, right = split
        internal.keys.insert(child_index, separator)
        internal.children.insert(child_index + 1, right)
        if len(internal.children) > self._order:
            return self._split_internal(internal)
        return None

    def _split_leaf(self, leaf: _LeafNode) -> tuple[float, _LeafNode]:
        mid = len(leaf.keys) // 2
        right = _LeafNode()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _InternalNode) -> tuple[float, _InternalNode]:
        mid = len(node.children) // 2
        separator = node.keys[mid - 1]
        right = _InternalNode()
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        return separator, right

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of stored records."""
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        return self._height

    def _find_leaf(self, key: float) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            index = bisect_right(node.keys, key)  # type: ignore[union-attr]
            node = node.children[index]  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    def get(self, key: float, default: float | None = None) -> float | None:
        """Value of the first record with exactly this key, or ``default``."""
        leaf = self._find_leaf(float(key))
        index = bisect_left(leaf.keys, float(key))
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: float) -> bool:
        return self.get(float(key)) is not None

    def items_in_range(self, low: float, high: float):
        """Yield (key, value) pairs with ``low <= key <= high`` in key order."""
        if high < low:
            raise QueryError(f"invalid range [{low}, {high}]")
        leaf = self._find_leaf(float(low))
        index = bisect_left(leaf.keys, float(low))
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def range_aggregate(self, low: float, high: float, aggregate: str = "sum") -> float:
        """Aggregate the values of records with key in ``[low, high]``.

        ``aggregate`` is one of ``"sum"``, ``"count"``, ``"min"``, ``"max"``.
        """
        values = [value for _, value in self.items_in_range(low, high)]
        if aggregate == "count":
            return float(len(values))
        if not values:
            return 0.0 if aggregate == "sum" else float("nan")
        if aggregate == "sum":
            return float(sum(values))
        if aggregate == "max":
            return float(max(values))
        if aggregate == "min":
            return float(min(values))
        raise QueryError(f"unsupported aggregate {aggregate!r}")

    def range_aggregate_batch(
        self, lows: np.ndarray, highs: np.ndarray, aggregate: str = "sum"
    ) -> np.ndarray:
        """Batch of :meth:`range_aggregate` calls.

        A pointer-based B+tree has no flat-array layout to vectorize over, so
        each query still walks the tree; the batch API exists so the bench
        harness compares every method through the same interface.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        return np.array(
            [self.range_aggregate(lows[i], highs[i], aggregate) for i in range(lows.size)],
            dtype=np.float64,
        )

    def keys(self) -> list[float]:
        """All keys in ascending order."""
        result: list[float] = []
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        leaf: _LeafNode | None = node  # type: ignore[assignment]
        while leaf is not None:
            result.extend(leaf.keys)
            leaf = leaf.next
        return result

    def size_in_bytes(self) -> int:
        """Rough footprint: 16 bytes per stored (key, value) pair plus nodes."""
        # Count nodes by traversal.
        nodes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[union-attr]
        return 16 * self._size + 64 * nodes
