"""Exact baselines (Section III-B of the paper).

* :class:`KeyCumulativeArray` — the key-cumulative array (KCA, Figure 3):
  prefix sums over sorted keys, evaluated by binary search, answering SUM and
  COUNT exactly in ``O(log n)``.
* :class:`BruteForceAggregator` — linear scans; the ground truth oracle used
  in tests and accuracy measurements for every aggregate.
* :class:`PrefixSumGrid2D` — the classic 2-D prefix-sum array over a fixed
  grid; exact for queries aligned to the grid and a useful comparison point
  for the two-key experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Aggregate
from ..errors import DataError, QueryError

__all__ = ["KeyCumulativeArray", "BruteForceAggregator", "PrefixSumGrid2D"]


@dataclass
class KeyCumulativeArray:
    """Prefix-sum array over sorted keys with binary-search evaluation.

    Unlike the classic prefix-sum array the search key may be any float, not
    just a stored key (the paper's remark in Section III-B1).
    """

    keys: np.ndarray
    cumulative: np.ndarray
    aggregate: Aggregate = Aggregate.SUM

    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        aggregate: Aggregate = Aggregate.SUM,
    ) -> "KeyCumulativeArray":
        """Build from raw records (sorting and accumulating)."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size == 0:
            raise DataError("dataset is empty")
        if measures is None or aggregate is Aggregate.COUNT:
            measures = np.ones_like(keys)
        measures = np.asarray(measures, dtype=np.float64)
        if keys.size != measures.size:
            raise DataError("keys and measures must have equal length")
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        measures = measures[order]
        return cls(keys=keys, cumulative=np.cumsum(measures), aggregate=aggregate)

    @classmethod
    def from_cumulative(cls, cumulative_function) -> "KeyCumulativeArray":
        """Wrap an existing :class:`repro.functions.CumulativeFunction`."""
        return cls(
            keys=cumulative_function.keys,
            cumulative=cumulative_function.values,
            aggregate=cumulative_function.aggregate,
        )

    @property
    def size(self) -> int:
        """Number of stored keys."""
        return int(self.keys.size)

    def evaluate(self, key: float) -> float:
        """``CFsum(key)`` by binary search (O(log n))."""
        idx = int(np.searchsorted(self.keys, key, side="right"))
        if idx == 0:
            return 0.0
        return float(self.cumulative[idx - 1])

    def range_aggregate(self, low: float, high: float) -> float:
        """Exact SUM/COUNT over keys in the closed range ``[low, high]``."""
        if high < low:
            raise QueryError(f"invalid range [{low}, {high}]")
        hi = int(np.searchsorted(self.keys, high, side="right"))
        lo = int(np.searchsorted(self.keys, low, side="left"))
        if hi <= lo:
            return 0.0
        upper = float(self.cumulative[hi - 1])
        lower = float(self.cumulative[lo - 1]) if lo > 0 else 0.0
        return upper - lower

    def evaluate_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate` (one ``searchsorted`` for all keys)."""
        padded = np.concatenate(([0.0], self.cumulative))
        return padded[np.searchsorted(self.keys, np.asarray(keys, dtype=np.float64), side="right")]

    def range_aggregate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`range_aggregate` over N ranges in O(1) NumPy calls."""
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        if np.any(highs < lows):
            raise QueryError("invalid range: high < low")
        padded = np.concatenate(([0.0], self.cumulative))
        # Empty ranges have identical insertion points on both sides, so the
        # difference is exactly 0 — no special-casing needed.
        upper = padded[np.searchsorted(self.keys, highs, side="right")]
        lower = padded[np.searchsorted(self.keys, lows, side="left")]
        return upper - lower

    def size_in_bytes(self) -> int:
        """Footprint of the stored arrays (8 bytes per float)."""
        return 8 * (self.keys.size + self.cumulative.size)


class BruteForceAggregator:
    """Linear-scan ground truth for every aggregate (1 and 2 keys)."""

    def __init__(
        self,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        second_keys: np.ndarray | None = None,
    ) -> None:
        self._keys = np.asarray(keys, dtype=np.float64)
        if self._keys.size == 0:
            raise DataError("dataset is empty")
        if measures is None:
            measures = np.ones_like(self._keys)
        self._measures = np.asarray(measures, dtype=np.float64)
        if self._keys.size != self._measures.size:
            raise DataError("keys and measures must have equal length")
        self._second_keys = (
            np.asarray(second_keys, dtype=np.float64) if second_keys is not None else None
        )
        if self._second_keys is not None and self._second_keys.size != self._keys.size:
            raise DataError("second_keys must have the same length as keys")

    def range_aggregate(self, low: float, high: float, aggregate: Aggregate) -> float:
        """Exact one-key range aggregate by scanning every record."""
        if high < low:
            raise QueryError(f"invalid range [{low}, {high}]")
        mask = (self._keys >= low) & (self._keys <= high)
        selected = self._measures[mask]
        if aggregate is Aggregate.COUNT:
            return float(np.count_nonzero(mask))
        if selected.size == 0:
            return 0.0 if aggregate is Aggregate.SUM else float("nan")
        if aggregate is Aggregate.SUM:
            return float(selected.sum())
        if aggregate is Aggregate.MAX:
            return float(selected.max())
        if aggregate is Aggregate.MIN:
            return float(selected.min())
        raise QueryError(f"unsupported aggregate {aggregate}")

    def range_aggregate_batch(
        self, lows: np.ndarray, highs: np.ndarray, aggregate: Aggregate
    ) -> np.ndarray:
        """Batch of exact one-key aggregates.

        A brute-force scan has no sublinear batch form; each query scans the
        records, so this exists for API parity (and as the batch oracle in
        tests), not for speed.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        return np.array(
            [self.range_aggregate(lows[i], highs[i], aggregate) for i in range(lows.size)],
            dtype=np.float64,
        )

    def rectangle_aggregate(
        self,
        x_low: float,
        x_high: float,
        y_low: float,
        y_high: float,
        aggregate: Aggregate = Aggregate.COUNT,
    ) -> float:
        """Exact two-key rectangle aggregate by scanning every record."""
        if self._second_keys is None:
            raise QueryError("two-key query on a one-key aggregator")
        if x_high < x_low or y_high < y_low:
            raise QueryError("invalid rectangle bounds")
        mask = (
            (self._keys >= x_low)
            & (self._keys <= x_high)
            & (self._second_keys >= y_low)
            & (self._second_keys <= y_high)
        )
        selected = self._measures[mask]
        if aggregate is Aggregate.COUNT:
            return float(np.count_nonzero(mask))
        if selected.size == 0:
            return 0.0 if aggregate is Aggregate.SUM else float("nan")
        if aggregate is Aggregate.SUM:
            return float(selected.sum())
        if aggregate is Aggregate.MAX:
            return float(selected.max())
        return float(selected.min())


class PrefixSumGrid2D:
    """Dense 2-D prefix-sum grid for rectangle COUNT/SUM estimation.

    Counts are exact when query edges align with grid lines; otherwise the
    grid answers with the cells fully covered plus a fractional estimate of
    boundary cells, so the error is bounded by the mass of the boundary
    cells.  This is the classic data-cube prefix-sum structure [Ho et al.].
    """

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray | None = None,
        resolution: int = 128,
    ) -> None:
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.size == 0 or xs.size != ys.size:
            raise DataError("xs and ys must be equal-length non-empty arrays")
        if resolution < 2:
            raise DataError("resolution must be >= 2")
        if measures is None:
            measures = np.ones_like(xs)
        measures = np.asarray(measures, dtype=np.float64)
        self._x_edges = np.linspace(xs.min(), xs.max(), resolution + 1)
        self._y_edges = np.linspace(ys.min(), ys.max(), resolution + 1)
        histogram, _, _ = np.histogram2d(
            xs, ys, bins=[self._x_edges, self._y_edges], weights=measures
        )
        # prefix[i, j] = total mass of cells with index < i and < j
        self._prefix = np.zeros((resolution + 1, resolution + 1))
        self._prefix[1:, 1:] = np.cumsum(np.cumsum(histogram, axis=0), axis=1)
        self._resolution = resolution

    @property
    def resolution(self) -> int:
        """Number of grid cells along each axis."""
        return self._resolution

    def _cell_fraction(self, value: float, edges: np.ndarray) -> float:
        """Continuous cell coordinate of ``value`` within the grid."""
        clipped = float(np.clip(value, edges[0], edges[-1]))
        idx = int(np.searchsorted(edges, clipped, side="right")) - 1
        idx = min(max(idx, 0), edges.size - 2)
        width = edges[idx + 1] - edges[idx]
        frac = 0.0 if width == 0 else (clipped - edges[idx]) / width
        return idx + frac

    def _prefix_at(self, x: float, y: float) -> float:
        """Bilinear interpolation of the prefix-sum at an arbitrary point."""
        cx = self._cell_fraction(x, self._x_edges)
        cy = self._cell_fraction(y, self._y_edges)
        ix, iy = int(np.floor(cx)), int(np.floor(cy))
        fx, fy = cx - ix, cy - iy
        p = self._prefix
        v00 = p[ix, iy]
        v10 = p[min(ix + 1, self._resolution), iy]
        v01 = p[ix, min(iy + 1, self._resolution)]
        v11 = p[min(ix + 1, self._resolution), min(iy + 1, self._resolution)]
        return float(
            v00 * (1 - fx) * (1 - fy)
            + v10 * fx * (1 - fy)
            + v01 * (1 - fx) * fy
            + v11 * fx * fy
        )

    def rectangle_estimate(self, x_low: float, x_high: float, y_low: float, y_high: float) -> float:
        """Estimate the rectangle aggregate by 4-corner inclusion-exclusion."""
        if x_high < x_low or y_high < y_low:
            raise QueryError("invalid rectangle bounds")
        return (
            self._prefix_at(x_high, y_high)
            - self._prefix_at(x_low, y_high)
            - self._prefix_at(x_high, y_low)
            + self._prefix_at(x_low, y_low)
        )

    def size_in_bytes(self) -> int:
        """Footprint of the prefix matrix."""
        return int(self._prefix.nbytes)
