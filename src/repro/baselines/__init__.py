"""Baseline and competitor methods from the paper's evaluation (Table IV).

* :mod:`exact` — the exact methods of Section III-B: key-cumulative array
  (prefix sums + binary search) and a brute-force scanner; also a 2-D
  prefix-sum grid.
* :mod:`aggregate_tree` — the aggregate max/min segment tree and the 2-D
  aggregate R-tree (aR-tree).
* :mod:`btree` — an in-memory B+tree substrate (stand-in for the STX B-tree).
* :mod:`rmi` — the Recursive Model Index (Kraska et al.) adapted to
  approximate range aggregates, with linear-regression and tiny-MLP models.
* :mod:`fiting_tree` — the FITing-tree (Galakatos et al.): error-bounded
  piecewise-linear segmentation.
* :mod:`sampling` — the S2 sequential-sampling estimator and the S-tree
  (B+tree over a sample).
* :mod:`histogram` — equi-width and entropy-based histograms (Hist).
"""

from .exact import KeyCumulativeArray, BruteForceAggregator, PrefixSumGrid2D
from .aggregate_tree import AggregateSegmentTree, AggregateRTree2D
from .btree import BPlusTree
from .rmi import RecursiveModelIndex, LinearModel, TinyMLP
from .fiting_tree import FITingTree
from .sampling import SequentialSampler, SampledBTree
from .histogram import EquiWidthHistogram, EntropyHistogram

__all__ = [
    "KeyCumulativeArray",
    "BruteForceAggregator",
    "PrefixSumGrid2D",
    "AggregateSegmentTree",
    "AggregateRTree2D",
    "BPlusTree",
    "RecursiveModelIndex",
    "LinearModel",
    "TinyMLP",
    "FITingTree",
    "SequentialSampler",
    "SampledBTree",
    "EquiWidthHistogram",
    "EntropyHistogram",
]
