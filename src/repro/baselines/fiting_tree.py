"""FITing-tree baseline: error-bounded piecewise-linear segmentation.

Galakatos et al.'s FITing-tree partitions sorted keys into segments, each
represented by a line whose prediction error is bounded by a user-chosen
budget; the segments are indexed by a small tree.  The classic construction
is the *shrinking cone* algorithm: keep a feasible slope cone while appending
points and close the segment when the cone becomes empty.

Following the paper's appendix, we adapt the tree to range aggregates by
fitting the lines to the target function ``CFsum(k)`` (or ``DFmax``), so the
segment error budget plays exactly the role of PolyFit's delta and the
Lemma 2/3 guarantee machinery carries over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Aggregate, GuaranteeKind
from ..errors import DataError, NotSupportedError
from ..functions.cumulative import CumulativeFunction, build_cumulative_function
from ..queries.batch import resolve_batch_certificates, validate_bounds_batch
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery

__all__ = ["LinearSegment", "FITingTree"]


@dataclass(frozen=True)
class LinearSegment:
    """One linear segment of the FITing-tree.

    The segment predicts ``value = slope * (key - key_low) + intercept`` for
    keys in ``[key_low, key_high]`` with absolute error at most the tree's
    budget.
    """

    key_low: float
    key_high: float
    slope: float
    intercept: float
    max_error: float

    def predict(self, key: float) -> float:
        """Evaluate the segment's line at ``key``."""
        return self.slope * (key - self.key_low) + self.intercept

    @property
    def num_parameters(self) -> int:
        """Stored floats: bounds, slope, intercept."""
        return 4


def shrinking_cone_segmentation(
    keys: np.ndarray, values: np.ndarray, error_budget: float
) -> list[LinearSegment]:
    """Greedy shrinking-cone segmentation with max error ``error_budget``.

    Starting from the segment origin, maintain the interval of slopes that
    keep every seen point within ``error_budget`` of the line through the
    origin; close the segment when that interval becomes empty.  This is the
    standard FITing-tree construction and runs in a single pass.
    """
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if keys.size == 0:
        raise DataError("cannot segment an empty point set")
    if keys.size != values.size:
        raise DataError("keys and values must have equal length")
    if np.any(np.diff(keys) < 0):
        raise DataError("keys must be sorted ascending")
    if error_budget < 0:
        raise DataError("error_budget must be non-negative")

    segments: list[LinearSegment] = []
    start = 0
    n = keys.size
    while start < n:
        origin_key = keys[start]
        origin_value = values[start]
        slope_low = -np.inf
        slope_high = np.inf
        stop = start + 1
        while stop < n:
            dx = keys[stop] - origin_key
            dy = values[stop] - origin_value
            if dx <= 0:
                # Duplicate key: acceptable only if within budget vertically.
                if abs(dy) > error_budget:
                    break
                stop += 1
                continue
            candidate_low = (dy - error_budget) / dx
            candidate_high = (dy + error_budget) / dx
            new_low = max(slope_low, candidate_low)
            new_high = min(slope_high, candidate_high)
            if new_low > new_high:
                break
            slope_low, slope_high = new_low, new_high
            stop += 1
        if stop == start + 1:
            slope = 0.0
        else:
            slope = (
                (slope_low + slope_high) / 2.0
                if np.isfinite(slope_low) and np.isfinite(slope_high)
                else 0.0
            )
        segment_keys = keys[start:stop]
        segment_values = values[start:stop]
        predictions = slope * (segment_keys - origin_key) + origin_value
        achieved = float(np.max(np.abs(predictions - segment_values)))
        segments.append(
            LinearSegment(
                key_low=float(origin_key),
                key_high=float(keys[stop - 1]),
                slope=float(slope),
                intercept=float(origin_value),
                max_error=achieved,
            )
        )
        start = stop
    return segments


class FITingTree:
    """FITing-tree adapted to approximate range aggregate queries.

    Only COUNT and SUM are supported (Table IV of the paper: FITing-tree has
    no MAX or two-key support).
    """

    def __init__(self, segments: list[LinearSegment], cumulative: CumulativeFunction, error_budget: float) -> None:
        self._segments = segments
        self._cumulative = cumulative
        self._error_budget = float(error_budget)
        self._segment_lows = np.array([s.key_low for s in segments], dtype=np.float64)
        # Flat per-segment parameter arrays for the vectorized batch path.
        self._segment_highs = np.array([s.key_high for s in segments], dtype=np.float64)
        self._slopes = np.array([s.slope for s in segments], dtype=np.float64)
        self._intercepts = np.array([s.intercept for s in segments], dtype=np.float64)

    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        aggregate: Aggregate = Aggregate.COUNT,
        *,
        error_budget: float = 50.0,
    ) -> "FITingTree":
        """Build the tree over the cumulative function with the given budget."""
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("FITing-tree supports only COUNT and SUM aggregates")
        cumulative = build_cumulative_function(keys, measures, aggregate)
        segments = shrinking_cone_segmentation(cumulative.keys, cumulative.values, error_budget)
        return cls(segments=segments, cumulative=cumulative, error_budget=error_budget)

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the tree answers (used by the engine's batch checks)."""
        return self._cumulative.aggregate

    @property
    def num_segments(self) -> int:
        """Number of linear segments."""
        return len(self._segments)

    @property
    def error_budget(self) -> float:
        """The per-segment error budget (the delta analogue)."""
        return self._error_budget

    @property
    def segments(self) -> list[LinearSegment]:
        """The linear segments (read-only view)."""
        return list(self._segments)

    def size_in_bytes(self) -> int:
        """Footprint of the stored segments (8 bytes per float)."""
        return 8 * sum(segment.num_parameters for segment in self._segments)

    def _locate(self, key: float) -> LinearSegment:
        position = int(np.searchsorted(self._segment_lows, key, side="right")) - 1
        position = int(np.clip(position, 0, len(self._segments) - 1))
        return self._segments[position]

    def predict_cumulative(self, key: float) -> float:
        """Approximate ``CF(key)`` with the covering segment's line."""
        segment = self._locate(key)
        clamped = float(np.clip(key, segment.key_low, segment.key_high))
        return segment.predict(clamped)

    def estimate(self, query: RangeQuery) -> float:
        """Approximate range aggregate ``CF(high) - CF(low)``."""
        if query.aggregate is not self._cumulative.aggregate:
            raise NotSupportedError("aggregate mismatch")
        lower = 0.0 if query.low < self._segments[0].key_low else self.predict_cumulative(query.low)
        return self.predict_cumulative(query.high) - lower

    def predict_cumulative_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict_cumulative`: segments are flat arrays, so
        locating and evaluating N keys is one ``searchsorted`` plus a fused
        multiply-add."""
        keys = np.asarray(keys, dtype=np.float64)
        position = np.clip(
            np.searchsorted(self._segment_lows, keys, side="right") - 1,
            0,
            len(self._segments) - 1,
        )
        clamped = np.clip(keys, self._segment_lows[position], self._segment_highs[position])
        return self._slopes[position] * (clamped - self._segment_lows[position]) + self._intercepts[
            position
        ]

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`estimate` over N ranges."""
        lows, highs = validate_bounds_batch(lows, highs)
        lower = np.where(
            lows < self._segments[0].key_low, 0.0, self.predict_cumulative_batch(lows)
        )
        return self.predict_cumulative_batch(highs) - lower

    def query_batch(
        self, lows: np.ndarray, highs: np.ndarray, guarantee: Guarantee | None = None
    ) -> BatchQueryResult:
        """Batch counterpart of :meth:`query` (vectorized certificates).

        Like the scalar path, an unmeetable absolute guarantee answers
        exactly (absolute_fallback=True, unlike PolyFit).
        """
        lows, highs = validate_bounds_batch(lows, highs)
        approx = self.estimate_batch(lows, highs)
        return resolve_batch_certificates(
            approx,
            error_bound=2.0 * self._error_budget,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self._cumulative.range_sum_batch(
                lows[mask], highs[mask]
            ),
            absolute_fallback=True,
        )

    def query(self, query: RangeQuery, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer with PolyFit-style guarantee semantics (Lemmas 2-3)."""
        approx = self.estimate(query)
        delta = self._error_budget
        bound = 2.0 * delta
        if guarantee is None:
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound <= guarantee.epsilon + 1e-12:
                return QueryResult(value=approx, guaranteed=True, error_bound=bound)
            exact = self.exact(query)
            return QueryResult(value=exact, guaranteed=True, exact_fallback=True, error_bound=0.0)
        threshold = 2.0 * delta * (1.0 + 1.0 / guarantee.epsilon)
        if approx >= threshold:
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        exact = self.exact(query)
        return QueryResult(value=exact, guaranteed=True, exact_fallback=True, error_bound=0.0)

    def exact(self, query: RangeQuery) -> float:
        """Exact answer from the underlying cumulative function."""
        return self._cumulative.range_sum(query.low, query.high)
