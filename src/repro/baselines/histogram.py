"""Histogram-based selectivity estimators.

* :class:`EquiWidthHistogram` — the classic fixed-width bucket histogram.
* :class:`EntropyHistogram` — an entropy-guided histogram in the spirit of
  To, Chiang and Shahabi's entropy-based histograms (the paper's "Hist"
  heuristic): bucket boundaries are chosen greedily so that the mass of each
  bucket is as close to uniform as possible, which maximizes the entropy of
  the bucket-mass distribution for a fixed bucket budget.

Both estimators answer range COUNT/SUM queries by summing fully covered
buckets and linearly interpolating the two boundary buckets (the continuous
values assumption).  Neither offers a deterministic error guarantee; they are
the heuristic comparison points of Figure 20.
"""

from __future__ import annotations

import numpy as np

from ..config import Aggregate
from ..errors import DataError, NotSupportedError, QueryError

__all__ = ["EquiWidthHistogram", "EntropyHistogram"]


class _BaseHistogram:
    """Shared machinery: bucket edges + per-bucket mass, interpolated queries."""

    def __init__(self, edges: np.ndarray, masses: np.ndarray) -> None:
        if edges.ndim != 1 or masses.ndim != 1 or edges.size != masses.size + 1:
            raise DataError("edges must have exactly one more entry than masses")
        self._edges = edges
        self._masses = masses
        self._cumulative = np.concatenate(([0.0], np.cumsum(masses)))

    @property
    def num_buckets(self) -> int:
        """Number of buckets."""
        return int(self._masses.size)

    @property
    def edges(self) -> np.ndarray:
        """Bucket edges (ascending, length ``num_buckets + 1``)."""
        return self._edges.copy()

    @property
    def masses(self) -> np.ndarray:
        """Per-bucket aggregated mass."""
        return self._masses.copy()

    def _cumulative_at(self, key: float) -> float:
        """Mass of all records with key <= ``key`` under the uniform-bucket model."""
        if key <= self._edges[0]:
            return 0.0
        if key >= self._edges[-1]:
            return float(self._cumulative[-1])
        bucket = int(np.searchsorted(self._edges, key, side="right")) - 1
        bucket = min(max(bucket, 0), self.num_buckets - 1)
        left, right = self._edges[bucket], self._edges[bucket + 1]
        fraction = 0.0 if right == left else (key - left) / (right - left)
        return float(self._cumulative[bucket] + fraction * self._masses[bucket])

    def range_estimate(self, low: float, high: float) -> float:
        """Estimated aggregate over ``[low, high]``."""
        if high < low:
            raise QueryError("invalid range")
        return self._cumulative_at(high) - self._cumulative_at(low)

    def _cumulative_at_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_cumulative_at` for N keys at once."""
        keys = np.asarray(keys, dtype=np.float64)
        bucket = np.clip(
            np.searchsorted(self._edges, keys, side="right") - 1, 0, self.num_buckets - 1
        )
        left = self._edges[bucket]
        width = self._edges[bucket + 1] - left
        with np.errstate(invalid="ignore", divide="ignore"):
            fraction = np.where(width > 0, (keys - left) / width, 0.0)
        inside = self._cumulative[bucket] + fraction * self._masses[bucket]
        below = keys <= self._edges[0]
        above = keys >= self._edges[-1]
        return np.where(below, 0.0, np.where(above, self._cumulative[-1], inside))

    def range_estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`range_estimate` over N ranges in O(1) NumPy calls."""
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        if np.any(highs < lows):
            raise QueryError("invalid range: high < low")
        return self._cumulative_at_batch(highs) - self._cumulative_at_batch(lows)

    def size_in_bytes(self) -> int:
        """Footprint of edges and masses."""
        return int(self._edges.nbytes + self._masses.nbytes)


class EquiWidthHistogram(_BaseHistogram):
    """Fixed-width bucket histogram over one key."""

    def __init__(
        self,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        num_buckets: int = 128,
        aggregate: Aggregate = Aggregate.COUNT,
    ) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size == 0:
            raise DataError("dataset is empty")
        if num_buckets < 1:
            raise DataError("num_buckets must be >= 1")
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("histograms support COUNT and SUM only")
        if measures is None or aggregate is Aggregate.COUNT:
            measures = np.ones_like(keys)
        measures = np.asarray(measures, dtype=np.float64)
        if measures.size != keys.size:
            raise DataError("keys and measures must have equal length")
        edges = np.linspace(keys.min(), keys.max(), num_buckets + 1)
        # Guard against a degenerate single-valued key domain.
        if edges[0] == edges[-1]:
            edges = np.array([edges[0], edges[0] + 1.0])
        masses, _ = np.histogram(keys, bins=edges, weights=measures)
        super().__init__(edges=edges, masses=masses.astype(np.float64))


class EntropyHistogram(_BaseHistogram):
    """Entropy-guided histogram (the paper's "Hist" heuristic).

    Bucket boundaries are placed on the empirical quantiles of the aggregated
    mass, which equalizes per-bucket mass and therefore maximizes the entropy
    of the bucket-mass distribution for the given bucket budget.  With skewed
    data this concentrates buckets where the mass is, exactly the behaviour
    entropy-based histograms are designed for.
    """

    def __init__(
        self,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        num_buckets: int = 128,
        aggregate: Aggregate = Aggregate.COUNT,
    ) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size == 0:
            raise DataError("dataset is empty")
        if num_buckets < 1:
            raise DataError("num_buckets must be >= 1")
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("histograms support COUNT and SUM only")
        if measures is None or aggregate is Aggregate.COUNT:
            measures = np.ones_like(keys)
        measures = np.asarray(measures, dtype=np.float64)
        if measures.size != keys.size:
            raise DataError("keys and measures must have equal length")

        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_measures = measures[order]
        cumulative = np.cumsum(sorted_measures)
        total = cumulative[-1]
        if total <= 0:
            edges = np.linspace(sorted_keys[0], sorted_keys[-1] or 1.0, num_buckets + 1)
            masses = np.zeros(num_buckets)
            super().__init__(edges=edges, masses=masses)
            return

        # Mass quantile targets: equal mass per bucket.
        targets = np.linspace(0.0, total, num_buckets + 1)[1:-1]
        cut_positions = np.searchsorted(cumulative, targets, side="left")
        cut_keys = sorted_keys[np.clip(cut_positions, 0, sorted_keys.size - 1)]
        edges = np.concatenate(([sorted_keys[0]], cut_keys, [sorted_keys[-1]]))
        edges = np.maximum.accumulate(edges)
        # Collapse duplicate edges introduced by heavy single keys.
        edges = np.unique(edges)
        if edges.size < 2:
            edges = np.array([sorted_keys[0], sorted_keys[0] + 1.0])
        masses, _ = np.histogram(keys, bins=edges, weights=measures)
        super().__init__(edges=edges, masses=masses.astype(np.float64))

    @property
    def bucket_entropy(self) -> float:
        """Shannon entropy (nats) of the normalized bucket-mass distribution."""
        total = self._masses.sum()
        if total <= 0:
            return 0.0
        probabilities = self._masses[self._masses > 0] / total
        return float(-(probabilities * np.log(probabilities)).sum())
