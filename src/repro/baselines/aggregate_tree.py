"""Aggregate trees (the paper's exact MAX baseline and the aR-tree).

* :class:`AggregateSegmentTree` — the 1-D aggregate max/min tree of
  Section III-B2 / Figure 4: a balanced binary tree over sorted keys where
  each internal node stores the extreme of its interval.  Range queries visit
  at most two branches per level, so they run in ``O(log n)``.
* :class:`AggregateRTree2D` — an aggregate R-tree (aR-tree, Papadias et al.)
  over 2-D points, bulk-loaded with Sort-Tile-Recursive packing.  Each node
  stores the count/sum of its subtree so fully covered nodes are answered
  without descending.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import Aggregate
from ..errors import DataError, QueryError

__all__ = ["AggregateSegmentTree", "AggregateRTree2D"]


class AggregateSegmentTree:
    """Implicit-array segment tree storing a range extreme (or sum) per node.

    The tree is built over records sorted by key; queries map key bounds to
    index bounds by binary search and then run the classic iterative
    bottom-up segment-tree traversal.
    """

    def __init__(
        self,
        keys: np.ndarray,
        measures: np.ndarray,
        aggregate: Aggregate = Aggregate.MAX,
    ) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        measures = np.asarray(measures, dtype=np.float64)
        if keys.size == 0:
            raise DataError("dataset is empty")
        if keys.size != measures.size:
            raise DataError("keys and measures must have equal length")
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._measures = measures[order]
        self._aggregate = aggregate
        self._size = int(keys.size)
        if aggregate is Aggregate.MAX:
            self._identity = -np.inf
            self._combine = np.maximum
        elif aggregate is Aggregate.MIN:
            self._identity = np.inf
            self._combine = np.minimum
        elif aggregate in (Aggregate.SUM, Aggregate.COUNT):
            self._identity = 0.0
            self._combine = np.add
        else:  # pragma: no cover - defensive
            raise DataError(f"unsupported aggregate {aggregate}")
        self._tree = np.full(2 * self._size, self._identity, dtype=np.float64)
        if aggregate is Aggregate.COUNT:
            self._tree[self._size:] = 1.0
        else:
            self._tree[self._size:] = self._measures
        for i in range(self._size - 1, 0, -1):
            self._tree[i] = self._combine(self._tree[2 * i], self._tree[2 * i + 1])

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate stored in the tree nodes."""
        return self._aggregate

    @property
    def size(self) -> int:
        """Number of leaf records."""
        return self._size

    def range_extreme(self, index_low: int, index_high: int) -> float:
        """Aggregate over leaf *indices* ``[index_low, index_high]`` (inclusive)."""
        if index_high < index_low:
            return float(self._identity)
        lo = int(index_low) + self._size
        hi = int(index_high) + self._size + 1
        if lo < self._size or hi > 2 * self._size:
            raise QueryError("leaf index out of range")
        result = self._identity
        while lo < hi:
            if lo & 1:
                result = self._combine(result, self._tree[lo])
                lo += 1
            if hi & 1:
                hi -= 1
                result = self._combine(result, self._tree[hi])
            lo //= 2
            hi //= 2
        return float(result)

    def range_query(self, key_low: float, key_high: float) -> float:
        """Aggregate over records whose *key* lies in ``[key_low, key_high]``."""
        if key_high < key_low:
            raise QueryError(f"invalid range [{key_low}, {key_high}]")
        lo = int(np.searchsorted(self._keys, key_low, side="left"))
        hi = int(np.searchsorted(self._keys, key_high, side="right")) - 1
        if hi < lo:
            if self._aggregate in (Aggregate.SUM, Aggregate.COUNT):
                return 0.0
            return float("nan")
        return self.range_extreme(lo, hi)

    def range_query_batch(
        self,
        key_lows: np.ndarray,
        key_highs: np.ndarray,
        *,
        force_scalar: bool = False,
    ) -> np.ndarray:
        """Batch of :meth:`range_query` calls, traversed level-synchronously.

        Key-to-index mapping is one vectorized ``searchsorted`` per side.
        The bottom-up traversal runs for all queries at once: every query
        sits at the same tree level after ``k`` halvings, so each of the
        O(log n) iterations resolves one level for the whole batch with a
        masked gather-combine — the total Python-level work drops from
        O(N log n) iterations to O(log n).  Per query, nodes are combined in
        exactly the scalar loop's order (low side, then high side, level by
        level), so results are bit-identical even for SUM, where addition
        order matters.  ``force_scalar=True`` keeps the per-query loop as
        the correctness oracle.
        """
        key_lows = np.asarray(key_lows, dtype=np.float64)
        key_highs = np.asarray(key_highs, dtype=np.float64)
        if key_lows.shape != key_highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        if np.any(key_highs < key_lows):
            raise QueryError("invalid range: high < low")
        lo_idx = np.searchsorted(self._keys, key_lows, side="left")
        hi_idx = np.searchsorted(self._keys, key_highs, side="right") - 1
        empty_value = (
            0.0 if self._aggregate in (Aggregate.SUM, Aggregate.COUNT) else float("nan")
        )
        empty = hi_idx < lo_idx
        if force_scalar:
            out = np.full(key_lows.shape, empty_value, dtype=np.float64)
            for i in range(out.size):
                if hi_idx[i] >= lo_idx[i]:
                    out[i] = self.range_extreme(int(lo_idx[i]), int(hi_idx[i]))
            return out
        out = np.full(key_lows.shape, self._identity, dtype=np.float64)
        lo = (lo_idx + self._size).astype(np.int64)
        hi = (hi_idx + self._size + 1).astype(np.int64)
        # Park empty queries at lo == hi == 0 so they never enter a combine.
        lo[empty] = 0
        hi[empty] = 0
        while True:
            active = lo < hi
            if not active.any():
                break
            take = active & ((lo & 1) == 1)
            if take.any():
                out[take] = self._combine(out[take], self._tree[lo[take]])
            lo = lo + take
            take = active & ((hi & 1) == 1)
            hi = hi - take
            if take.any():
                out[take] = self._combine(out[take], self._tree[hi[take]])
            # Halving inactive lanes preserves lo >= hi, so they stay inactive.
            lo >>= 1
            hi >>= 1
        out[empty] = empty_value
        return out

    def size_in_bytes(self) -> int:
        """Footprint of the tree array plus the sorted keys."""
        return int(self._tree.nbytes + self._keys.nbytes)


@dataclass
class _RTreeNode:
    """One node of the aggregate R-tree."""

    x_low: float
    x_high: float
    y_low: float
    y_high: float
    aggregate_value: float
    count: int
    children: list["_RTreeNode"] = field(default_factory=list)
    point_indices: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.point_indices is not None

    def covered_by(self, x_low: float, x_high: float, y_low: float, y_high: float) -> bool:
        """Node MBR fully inside the query rectangle."""
        return (
            x_low <= self.x_low
            and self.x_high <= x_high
            and y_low <= self.y_low
            and self.y_high <= y_high
        )

    def intersects(self, x_low: float, x_high: float, y_low: float, y_high: float) -> bool:
        """Node MBR intersects the query rectangle."""
        return not (
            self.x_high < x_low
            or x_high < self.x_low
            or self.y_high < y_low
            or y_high < self.y_low
        )


class AggregateRTree2D:
    """Aggregate R-tree over 2-D points (STR bulk-loaded).

    Each node stores the COUNT (or SUM of measures) of the points in its
    subtree.  Rectangle queries add fully covered nodes directly and only
    descend into partially covered ones, giving the usual ``O(sqrt(n))``-ish
    behaviour on real workloads; leaves are scanned exactly.
    """

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        leaf_capacity: int = 64,
        fanout: int = 16,
        aggregate: Aggregate = Aggregate.COUNT,
    ) -> None:
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.size == 0 or xs.size != ys.size:
            raise DataError("xs and ys must be equal-length non-empty arrays")
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise DataError("aggregate R-tree supports COUNT and SUM")
        if leaf_capacity < 1 or fanout < 2:
            raise DataError("leaf_capacity must be >= 1 and fanout >= 2")
        if measures is None or aggregate is Aggregate.COUNT:
            measures = np.ones_like(xs)
        measures = np.asarray(measures, dtype=np.float64)
        self._xs = xs
        self._ys = ys
        self._measures = measures
        self._aggregate = aggregate
        self._leaf_capacity = leaf_capacity
        self._fanout = fanout
        self._num_nodes = 0
        self._root = self._bulk_load(np.arange(xs.size))

    # ------------------------------------------------------------------ #
    # Construction (Sort-Tile-Recursive packing)
    # ------------------------------------------------------------------ #

    def _make_leaf(self, indices: np.ndarray) -> _RTreeNode:
        self._num_nodes += 1
        xs = self._xs[indices]
        ys = self._ys[indices]
        return _RTreeNode(
            x_low=float(xs.min()),
            x_high=float(xs.max()),
            y_low=float(ys.min()),
            y_high=float(ys.max()),
            aggregate_value=float(self._measures[indices].sum()),
            count=int(indices.size),
            point_indices=indices,
        )

    def _make_internal(self, children: list[_RTreeNode]) -> _RTreeNode:
        self._num_nodes += 1
        return _RTreeNode(
            x_low=min(child.x_low for child in children),
            x_high=max(child.x_high for child in children),
            y_low=min(child.y_low for child in children),
            y_high=max(child.y_high for child in children),
            aggregate_value=float(sum(child.aggregate_value for child in children)),
            count=int(sum(child.count for child in children)),
            children=children,
        )

    def _bulk_load(self, indices: np.ndarray) -> _RTreeNode:
        # Build leaves with STR: sort by x, slice into vertical strips, then
        # sort each strip by y and cut into leaf pages.
        n = indices.size
        num_leaves = int(np.ceil(n / self._leaf_capacity))
        strips = int(np.ceil(np.sqrt(num_leaves)))
        by_x = indices[np.argsort(self._xs[indices], kind="stable")]
        strip_size = int(np.ceil(n / strips))
        leaves: list[_RTreeNode] = []
        for s in range(0, n, strip_size):
            strip = by_x[s: s + strip_size]
            strip = strip[np.argsort(self._ys[strip], kind="stable")]
            for page_start in range(0, strip.size, self._leaf_capacity):
                page = strip[page_start: page_start + self._leaf_capacity]
                leaves.append(self._make_leaf(page))
        # Pack leaves into internal levels until a single root remains.
        level = leaves
        while len(level) > 1:
            next_level = [
                self._make_internal(level[i: i + self._fanout])
                for i in range(0, len(level), self._fanout)
            ]
            level = next_level
        return level[0]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Total number of tree nodes."""
        return self._num_nodes

    def rectangle_aggregate(self, x_low: float, x_high: float, y_low: float, y_high: float) -> float:
        """Exact COUNT/SUM over the closed query rectangle."""
        if x_high < x_low or y_high < y_low:
            raise QueryError("invalid rectangle bounds")
        total = 0.0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.intersects(x_low, x_high, y_low, y_high):
                continue
            if node.covered_by(x_low, x_high, y_low, y_high):
                total += node.aggregate_value
                continue
            if node.is_leaf:
                idx = node.point_indices
                mask = (
                    (self._xs[idx] >= x_low)
                    & (self._xs[idx] <= x_high)
                    & (self._ys[idx] >= y_low)
                    & (self._ys[idx] <= y_high)
                )
                total += float(self._measures[idx][mask].sum())
            else:
                stack.extend(node.children)
        return total

    def size_in_bytes(self) -> int:
        """Approximate footprint: 6 floats per node plus leaf index arrays."""
        leaf_floats = self._xs.size  # each point index referenced once
        return 8 * (6 * self._num_nodes + leaf_floats)
