"""Recursive Model Index (RMI) adapted to approximate range aggregates.

Kraska et al.'s RMI predicts the position of a key with a hierarchy of simple
models.  Following the paper's appendix, we adapt it to range aggregates by
fitting the models to the target function directly (``CFsum`` or ``DFmax``)
rather than to key positions, and by tracking the maximum absolute error of
each leaf model so the same Lemma 2-5 machinery certifies guarantees.

Two model families are provided:

* :class:`LinearModel` — ordinary least-squares line (the configuration the
  paper selects after the appendix study),
* :class:`TinyMLP` — a small numpy MLP with one or two hidden layers, used to
  reproduce the appendix's Table VI model-selection experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Aggregate, GuaranteeKind
from ..errors import DataError, NotSupportedError, QueryError
from ..functions.cumulative import CumulativeFunction, build_cumulative_function
from ..queries.batch import resolve_batch_certificates, validate_bounds_batch
from ..queries.types import BatchQueryResult, Guarantee, QueryResult, RangeQuery

__all__ = ["LinearModel", "TinyMLP", "RecursiveModelIndex"]


@dataclass
class LinearModel:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float = 0.0
    intercept: float = 0.0

    def fit(self, xs: np.ndarray, ys: np.ndarray) -> "LinearModel":
        """Fit the line to the points; degenerate inputs give a constant."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.size == 0:
            self.slope, self.intercept = 0.0, 0.0
            return self
        if xs.size == 1 or np.ptp(xs) == 0:
            self.slope, self.intercept = 0.0, float(ys.mean())
            return self
        slope, intercept = np.polyfit(xs, ys, deg=1)
        self.slope, self.intercept = float(slope), float(intercept)
        return self

    def predict(self, xs: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the line."""
        return self.slope * np.asarray(xs, dtype=np.float64) + self.intercept

    @property
    def num_parameters(self) -> int:
        """Two stored floats."""
        return 2


class TinyMLP:
    """A small fully connected network trained with plain gradient descent.

    Used only for the Table VI model-selection study (LR vs NN architectures);
    it is intentionally minimal: tanh activations, full-batch gradient
    descent, inputs and outputs standardised internally.
    """

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (8,),
        learning_rate: float = 0.05,
        epochs: int = 300,
        seed: int = 0,
    ) -> None:
        if any(width <= 0 for width in hidden_layers):
            raise DataError("hidden layer widths must be positive")
        self._hidden_layers = tuple(hidden_layers)
        self._learning_rate = learning_rate
        self._epochs = epochs
        self._seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._x_mean = 0.0
        self._x_std = 1.0
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def architecture(self) -> str:
        """Human-readable architecture string, e.g. ``1:8:1``."""
        widths = (1, *self._hidden_layers, 1)
        return ":".join(str(w) for w in widths)

    def fit(self, xs: np.ndarray, ys: np.ndarray) -> "TinyMLP":
        """Train on the points with full-batch gradient descent."""
        xs = np.asarray(xs, dtype=np.float64).reshape(-1, 1)
        ys = np.asarray(ys, dtype=np.float64).reshape(-1, 1)
        if xs.size == 0:
            raise DataError("cannot fit an empty point set")
        self._x_mean, self._x_std = float(xs.mean()), float(xs.std() or 1.0)
        self._y_mean, self._y_std = float(ys.mean()), float(ys.std() or 1.0)
        x = (xs - self._x_mean) / self._x_std
        y = (ys - self._y_mean) / self._y_std

        rng = np.random.default_rng(self._seed)
        widths = (1, *self._hidden_layers, 1)
        self._weights = [
            rng.normal(0.0, 1.0 / np.sqrt(widths[i]), size=(widths[i], widths[i + 1]))
            for i in range(len(widths) - 1)
        ]
        self._biases = [np.zeros((1, widths[i + 1])) for i in range(len(widths) - 1)]

        for _ in range(self._epochs):
            activations = [x]
            pre_activations = []
            for layer, (weight, bias) in enumerate(zip(self._weights, self._biases)):
                z = activations[-1] @ weight + bias
                pre_activations.append(z)
                is_last = layer == len(self._weights) - 1
                activations.append(z if is_last else np.tanh(z))
            error = activations[-1] - y
            grad = 2.0 * error / x.shape[0]
            for layer in range(len(self._weights) - 1, -1, -1):
                grad_w = activations[layer].T @ grad
                grad_b = grad.sum(axis=0, keepdims=True)
                if layer > 0:
                    grad = (grad @ self._weights[layer].T) * (
                        1.0 - np.tanh(pre_activations[layer - 1]) ** 2
                    )
                self._weights[layer] -= self._learning_rate * grad_w
                self._biases[layer] -= self._learning_rate * grad_b
        return self

    def predict(self, xs: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the trained network."""
        scalar = np.isscalar(xs)
        x = (np.atleast_1d(np.asarray(xs, dtype=np.float64)).reshape(-1, 1) - self._x_mean) / self._x_std
        out = x
        for layer, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            out = out @ weight + bias
            if layer < len(self._weights) - 1:
                out = np.tanh(out)
        result = out.ravel() * self._y_std + self._y_mean
        return float(result[0]) if scalar else result

    @property
    def num_parameters(self) -> int:
        """Total trained parameters."""
        return int(
            sum(weight.size for weight in self._weights)
            + sum(bias.size for bias in self._biases)
        )


class RecursiveModelIndex:
    """Multi-stage RMI over a cumulative target function.

    Construction follows the classic recipe: stage 1 has a single model over
    all points; each subsequent stage partitions points by the previous
    stage's (scaled) prediction and fits one model per partition.  Leaf models
    additionally record the maximum absolute error over the points routed to
    them, which is the quantity the guarantee machinery needs.

    Parameters
    ----------
    stage_sizes:
        Number of models per stage, e.g. ``(1, 10, 100)``.  The first entry
        must be 1.
    model_factory:
        Callable returning a fresh model with ``fit``/``predict``;
        defaults to :class:`LinearModel`.
    """

    def __init__(
        self,
        stage_sizes: tuple[int, ...] = (1, 10, 100),
        model_factory=LinearModel,
    ) -> None:
        if not stage_sizes or stage_sizes[0] != 1:
            raise DataError("stage_sizes must start with a single root model")
        if any(size <= 0 for size in stage_sizes):
            raise DataError("stage sizes must be positive")
        self._stage_sizes = tuple(stage_sizes)
        self._model_factory = model_factory
        self._stages: list[list[object]] = []
        self._stage_params: list[tuple[np.ndarray, np.ndarray]] | None = None
        self._leaf_errors: np.ndarray | None = None
        self._cumulative: CumulativeFunction | None = None
        self._aggregate = Aggregate.COUNT
        self._key_low = 0.0
        self._key_high = 1.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        aggregate: Aggregate = Aggregate.COUNT,
        *,
        stage_sizes: tuple[int, ...] = (1, 10, 100),
        model_factory=LinearModel,
    ) -> "RecursiveModelIndex":
        """Build the RMI over the cumulative function of the dataset.

        Only COUNT/SUM are supported (Table IV: RMI does not support MAX and
        two-key queries).
        """
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("RMI supports only COUNT and SUM aggregates")
        index = cls(stage_sizes=stage_sizes, model_factory=model_factory)
        index._aggregate = aggregate
        index._cumulative = build_cumulative_function(keys, measures, aggregate)
        index._fit(index._cumulative.keys, index._cumulative.values)
        return index

    def _fit(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._key_low = float(keys[0])
        self._key_high = float(keys[-1])
        total_span = max(values[-1] - values[0], 1.0)

        assignments = np.zeros(keys.size, dtype=int)
        self._stages = []
        for stage_index, stage_size in enumerate(self._stage_sizes):
            stage_models: list[object] = []
            next_assignments = np.zeros(keys.size, dtype=int)
            is_last = stage_index == len(self._stage_sizes) - 1
            next_size = 1 if is_last else self._stage_sizes[stage_index + 1]
            leaf_errors = np.zeros(stage_size)
            for model_id in range(stage_size):
                mask = assignments == model_id
                model = self._model_factory()
                if np.any(mask):
                    model.fit(keys[mask], values[mask])
                else:
                    model.fit(np.array([self._key_low]), np.array([0.0]))
                stage_models.append(model)
                if np.any(mask):
                    predictions = np.atleast_1d(model.predict(keys[mask]))
                    if is_last:
                        leaf_errors[model_id] = float(
                            np.max(np.abs(predictions - values[mask]))
                        )
                    else:
                        routed = np.clip(
                            (predictions - values[0]) / total_span * next_size,
                            0,
                            next_size - 1,
                        ).astype(int)
                        next_assignments[mask] = routed
            self._stages.append(stage_models)
            if is_last:
                self._leaf_errors = leaf_errors
            assignments = next_assignments

        # Flat per-stage parameter arrays for the vectorized batch path; only
        # available when every model is a LinearModel (TinyMLP stages fall
        # back to the per-key loop).
        self._stage_params: list[tuple[np.ndarray, np.ndarray]] | None = []
        for stage_models in self._stages:
            if not all(isinstance(model, LinearModel) for model in stage_models):
                self._stage_params = None
                break
            self._stage_params.append(
                (
                    np.array([model.slope for model in stage_models], dtype=np.float64),
                    np.array([model.intercept for model in stage_models], dtype=np.float64),
                )
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def aggregate(self) -> Aggregate:
        """Aggregate the index answers (used by the engine's batch checks)."""
        return self._aggregate

    @property
    def max_error(self) -> float:
        """Maximum absolute error of any leaf model (the certified delta)."""
        if self._leaf_errors is None:
            raise DataError("index not built")
        return float(self._leaf_errors.max())

    @property
    def stage_sizes(self) -> tuple[int, ...]:
        """Number of models per stage."""
        return self._stage_sizes

    def size_in_bytes(self) -> int:
        """Footprint of the stored model parameters plus per-leaf errors."""
        parameters = sum(
            getattr(model, "num_parameters", 2)
            for stage in self._stages
            for model in stage
        )
        leaves = self._stage_sizes[-1]
        return 8 * (parameters + leaves)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def predict_cumulative(self, key: float) -> float:
        """Predict ``CF(key)`` by routing through the model hierarchy."""
        if not self._stages or self._cumulative is None:
            raise DataError("index not built")
        key = float(np.clip(key, self._key_low, self._key_high))
        values = self._cumulative.values
        total_span = max(values[-1] - values[0], 1.0)
        model = self._stages[0][0]
        prediction = float(np.atleast_1d(model.predict(key))[0])
        for stage_index in range(1, len(self._stages)):
            stage_size = self._stage_sizes[stage_index]
            routed = int(
                np.clip((prediction - values[0]) / total_span * stage_size, 0, stage_size - 1)
            )
            model = self._stages[stage_index][routed]
            prediction = float(np.atleast_1d(model.predict(key))[0])
        return prediction

    def estimate(self, query: RangeQuery) -> float:
        """Approximate range aggregate ``CF(high) - CF(low)``."""
        if query.aggregate is not self._aggregate:
            raise NotSupportedError("aggregate mismatch")
        if query.low < self._key_low:
            lower = 0.0
        else:
            lower = self.predict_cumulative(query.low)
        return self.predict_cumulative(query.high) - lower

    def predict_cumulative_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`predict_cumulative` for N keys at once.

        With linear stages the model hierarchy flattens to per-stage
        slope/intercept arrays: each stage is one gather plus one fused
        multiply-add, so routing N keys costs O(stages) NumPy calls.  Mixed
        or MLP stages fall back to the per-key loop.
        """
        if not self._stages or self._cumulative is None:
            raise DataError("index not built")
        keys = np.asarray(keys, dtype=np.float64)
        if self._stage_params is None:
            return np.array([self.predict_cumulative(float(k)) for k in keys], dtype=np.float64)
        clipped = np.clip(keys, self._key_low, self._key_high)
        values = self._cumulative.values
        total_span = max(values[-1] - values[0], 1.0)
        slopes, intercepts = self._stage_params[0]
        prediction = slopes[0] * clipped + intercepts[0]
        for stage_index in range(1, len(self._stages)):
            stage_size = self._stage_sizes[stage_index]
            routed = np.clip(
                (prediction - values[0]) / total_span * stage_size, 0, stage_size - 1
            ).astype(int)
            slopes, intercepts = self._stage_params[stage_index]
            prediction = slopes[routed] * clipped + intercepts[routed]
        return prediction

    def estimate_batch(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`estimate` over N ranges."""
        lows, highs = validate_bounds_batch(lows, highs)
        lower = np.where(lows < self._key_low, 0.0, self.predict_cumulative_batch(lows))
        return self.predict_cumulative_batch(highs) - lower

    def query_batch(
        self, lows: np.ndarray, highs: np.ndarray, guarantee: Guarantee | None = None
    ) -> BatchQueryResult:
        """Batch counterpart of :meth:`query` (vectorized certificates).

        Like the scalar path, an unmeetable absolute guarantee answers
        exactly (absolute_fallback=True, unlike PolyFit).
        """
        if self._cumulative is None:
            raise DataError("index not built")
        lows, highs = validate_bounds_batch(lows, highs)
        approx = self.estimate_batch(lows, highs)
        return resolve_batch_certificates(
            approx,
            error_bound=2.0 * self.max_error,
            guarantee=guarantee,
            exact_for_mask=lambda mask: self._cumulative.range_sum_batch(
                lows[mask], highs[mask]
            ),
            absolute_fallback=True,
        )

    def query(self, query: RangeQuery, guarantee: Guarantee | None = None) -> QueryResult:
        """Answer with the same guarantee semantics as PolyFit.

        The per-leaf maximum error plays the role of delta; absolute
        guarantees need ``2 * max_error <= eps_abs`` and relative guarantees
        use the Lemma 3 certificate with fallback to the exact cumulative
        array.
        """
        if self._cumulative is None:
            raise DataError("index not built")
        approx = self.estimate(query)
        delta = self.max_error
        bound = 2.0 * delta
        if guarantee is None:
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        if guarantee.kind is GuaranteeKind.ABSOLUTE:
            if bound <= guarantee.epsilon + 1e-12:
                return QueryResult(value=approx, guaranteed=True, error_bound=bound)
            exact = self._cumulative.range_sum(query.low, query.high)
            return QueryResult(value=exact, guaranteed=True, exact_fallback=True, error_bound=0.0)
        threshold = 2.0 * delta * (1.0 + 1.0 / guarantee.epsilon)
        if approx >= threshold:
            return QueryResult(value=approx, guaranteed=True, error_bound=bound)
        exact = self._cumulative.range_sum(query.low, query.high)
        return QueryResult(value=exact, guaranteed=True, exact_fallback=True, error_bound=0.0)

    def exact(self, query: RangeQuery) -> float:
        """Exact answer through the underlying cumulative function."""
        if self._cumulative is None:
            raise DataError("index not built")
        if query.high < query.low:
            raise QueryError("invalid range")
        return self._cumulative.range_sum(query.low, query.high)
