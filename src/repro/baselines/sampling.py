"""Sampling-based estimators: S2 sequential sampling and the S-tree heuristic.

* :class:`SequentialSampler` (S2) — sequential sampling in the spirit of
  Haas & Swami: keep drawing records uniformly at random until the running
  confidence interval of the estimated selectivity is tight enough for the
  requested relative error at the requested confidence.  The guarantee is
  *probabilistic* (e.g. rel <= 0.01 with probability 0.9), matching the
  paper's description of S2.
* :class:`SampledBTree` (S-tree) — a B+tree built over a uniform sample of
  the data; range aggregates are answered from the sample and scaled by the
  sampling ratio.  Purely heuristic (no guarantee), used in Figure 20.
"""

from __future__ import annotations

import numpy as np

from ..config import Aggregate
from ..errors import DataError, NotSupportedError, QueryError
from .btree import BPlusTree

__all__ = ["SequentialSampler", "SampledBTree"]


class SequentialSampler:
    """S2-style sequential sampling estimator for COUNT/SUM queries.

    Parameters
    ----------
    keys, measures:
        The dataset; two-key mode is enabled by passing ``second_keys``.
    relative_error:
        Target relative error of the estimate.
    confidence:
        Probability with which the target must hold (paper default 0.9).
    batch_size:
        Records drawn per sampling round.
    max_fraction:
        Hard cap on the sampled fraction; reaching it means the estimator
        answers from the full scan (exact) for that query.
    """

    def __init__(
        self,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        second_keys: np.ndarray | None = None,
        *,
        relative_error: float = 0.01,
        confidence: float = 0.9,
        batch_size: int = 256,
        max_fraction: float = 1.0,
        seed: int = 99,
    ) -> None:
        self._keys = np.asarray(keys, dtype=np.float64)
        if self._keys.size == 0:
            raise DataError("dataset is empty")
        if measures is None:
            measures = np.ones_like(self._keys)
        self._measures = np.asarray(measures, dtype=np.float64)
        if self._measures.size != self._keys.size:
            raise DataError("keys and measures must have equal length")
        self._second_keys = (
            np.asarray(second_keys, dtype=np.float64) if second_keys is not None else None
        )
        if self._second_keys is not None and self._second_keys.size != self._keys.size:
            raise DataError("second_keys must match keys length")
        if not 0 < relative_error:
            raise DataError("relative_error must be positive")
        if not 0 < confidence < 1:
            raise DataError("confidence must be in (0, 1)")
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        if not 0 < max_fraction <= 1.0:
            raise DataError("max_fraction must be in (0, 1]")
        self._relative_error = relative_error
        self._confidence = confidence
        self._batch_size = batch_size
        self._max_fraction = max_fraction
        self._rng = np.random.default_rng(seed)
        # Normal quantile for the two-sided confidence interval.
        from scipy.stats import norm

        self._z = float(norm.ppf(0.5 + confidence / 2.0))

    @property
    def relative_error(self) -> float:
        """Target relative error."""
        return self._relative_error

    def _selection_mask_1d(self, low: float, high: float, indices: np.ndarray) -> np.ndarray:
        sampled_keys = self._keys[indices]
        return (sampled_keys >= low) & (sampled_keys <= high)

    def _selection_mask_2d(
        self,
        x_low: float,
        x_high: float,
        y_low: float,
        y_high: float,
        indices: np.ndarray,
    ) -> np.ndarray:
        if self._second_keys is None:
            raise NotSupportedError("two-key query on a one-key sampler")
        xs = self._keys[indices]
        ys = self._second_keys[indices]
        return (xs >= x_low) & (xs <= x_high) & (ys >= y_low) & (ys <= y_high)

    def _estimate(self, mask_fn, aggregate: Aggregate) -> tuple[float, int]:
        """Run sampling rounds until the stopping rule fires.

        Returns the estimate and the number of sampled records.
        """
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("sampling estimator supports COUNT and SUM only")
        n = self._keys.size
        max_samples = max(int(self._max_fraction * n), self._batch_size)
        sampled = 0
        hits = 0.0
        hit_squares = 0.0
        while sampled < max_samples:
            batch = self._rng.integers(0, n, size=self._batch_size)
            mask = mask_fn(batch)
            if aggregate is Aggregate.COUNT:
                contributions = mask.astype(np.float64)
            else:
                contributions = np.where(mask, self._measures[batch], 0.0)
            hits += float(contributions.sum())
            hit_squares += float((contributions**2).sum())
            sampled += self._batch_size
            mean = hits / sampled
            variance = max(hit_squares / sampled - mean**2, 0.0)
            if mean > 0:
                half_width = self._z * np.sqrt(variance / sampled)
                if half_width <= self._relative_error * mean:
                    break
        estimate = (hits / sampled) * n if sampled else 0.0
        return estimate, sampled

    def range_estimate(self, low: float, high: float, aggregate: Aggregate = Aggregate.COUNT) -> float:
        """Estimate a one-key range aggregate."""
        if high < low:
            raise QueryError("invalid range")
        estimate, _ = self._estimate(
            lambda idx: self._selection_mask_1d(low, high, idx), aggregate
        )
        return estimate

    def rectangle_estimate(
        self,
        x_low: float,
        x_high: float,
        y_low: float,
        y_high: float,
        aggregate: Aggregate = Aggregate.COUNT,
    ) -> float:
        """Estimate a two-key rectangle aggregate."""
        if x_high < x_low or y_high < y_low:
            raise QueryError("invalid rectangle bounds")
        estimate, _ = self._estimate(
            lambda idx: self._selection_mask_2d(x_low, x_high, y_low, y_high, idx), aggregate
        )
        return estimate

    def range_estimate_batch(
        self, lows: np.ndarray, highs: np.ndarray, aggregate: Aggregate = Aggregate.COUNT
    ) -> np.ndarray:
        """Batch of :meth:`range_estimate` calls.

        S2's stopping rule is adaptive per query (the sample size depends on
        the running confidence interval), so the batch form is a loop — the
        honest apples-to-apples comparison for a method with no flat layout.
        :meth:`range_estimate_batch_two_pass` trades the fully sequential
        rule for a vectorized two-pass variant of the same guarantee.
        """
        lows = np.asarray(lows, dtype=np.float64)
        highs = np.asarray(highs, dtype=np.float64)
        if lows.shape != highs.shape:
            raise QueryError("lows and highs must have matching shapes")
        return np.array(
            [self.range_estimate(lows[i], highs[i], aggregate) for i in range(lows.size)],
            dtype=np.float64,
        )

    def range_estimate_batch_two_pass(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        aggregate: Aggregate = Aggregate.COUNT,
        *,
        query_chunk: int = 256,
        sample_block: int = 65536,
    ) -> np.ndarray:
        """Batched two-pass variant of the sequential stopping rule.

        The sequential rule re-checks the confidence interval after every
        ``batch_size`` draws, which forces a per-query loop.  The two-pass
        (Cochran-style) variant vectorizes it across the whole batch:

        1. **Round 1** — one shared pilot of ``batch_size`` uniform draws,
           evaluated against *every* query at once (a broadcasted selection
           mask).  Per query, the pilot mean and variance determine the
           sample size the stopping rule would need:
           ``n_i = ceil((z * sd / (rel * mean))^2)``, clipped to the same
           ``[batch_size, max_fraction * n]`` range the sequential rule
           operates in (a non-positive pilot mean — nothing hit yet — takes
           the cap, exactly like a sequential run that never tightens).
        2. **Round 2 (single adaptive top-up)** — one further shared draw of
           ``max(n_i) - batch_size`` records; query ``i``'s estimate uses
           the first ``n_i`` contributions of the shared pool, so every
           query stops at *its own* adaptive size while the whole batch
           costs two vectorized rounds.

        Estimates carry the same probabilistic guarantee as the sequential
        oracle (relative error <= ``relative_error`` with probability
        ~``confidence``; the pilot-estimated variance makes it approximate
        in the same way the oracle's running variance does).

        ``query_chunk`` bounds how many queries share one contribution
        matrix and ``sample_block`` bounds its sample axis, keeping peak
        memory at ``O(query_chunk * sample_block)`` regardless of how large
        the top-up gets.
        """
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("sampling estimator supports COUNT and SUM only")
        lows = np.atleast_1d(np.asarray(lows, dtype=np.float64))
        highs = np.atleast_1d(np.asarray(highs, dtype=np.float64))
        if lows.shape != highs.shape or lows.ndim != 1:
            raise QueryError("lows and highs must be equal-length 1-D arrays")
        if query_chunk < 1 or sample_block < 1:
            raise QueryError("query_chunk and sample_block must be >= 1")
        n = self._keys.size
        max_samples = max(int(self._max_fraction * n), self._batch_size)
        estimates = np.empty(lows.size, dtype=np.float64)
        for start in range(0, lows.size, query_chunk):
            stop = min(start + query_chunk, lows.size)
            estimates[start:stop] = self._two_pass_chunk(
                lows[start:stop], highs[start:stop], aggregate,
                max_samples=max_samples, sample_block=sample_block,
            )
        return estimates

    def _contributions(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        indices: np.ndarray,
        aggregate: Aggregate,
    ) -> np.ndarray:
        """(queries, samples) contribution matrix for one shared draw."""
        sampled_keys = self._keys[indices]
        mask = (sampled_keys >= lows[:, None]) & (sampled_keys <= highs[:, None])
        if aggregate is Aggregate.COUNT:
            return mask.astype(np.float64)
        return np.where(mask, self._measures[indices], 0.0)

    def _two_pass_chunk(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        aggregate: Aggregate,
        *,
        max_samples: int,
        sample_block: int,
    ) -> np.ndarray:
        n = self._keys.size
        pilot_size = min(self._batch_size, max_samples)
        pilot = self._rng.integers(0, n, size=pilot_size)
        contributions = self._contributions(lows, highs, pilot, aggregate)
        sums = contributions.sum(axis=1)
        square_sums = (contributions**2).sum(axis=1)
        mean = sums / pilot_size
        variance = np.maximum(square_sums / pilot_size - mean**2, 0.0)
        # Sample size at which the sequential rule's interval closes:
        # z * sqrt(var / n_i) <= rel * mean  =>  n_i >= z^2 var / (rel mean)^2.
        with np.errstate(divide="ignore", invalid="ignore"):
            needed = np.ceil(
                (self._z**2) * variance / (self._relative_error * mean) ** 2
            )
        needed = np.where(mean > 0, needed, float(max_samples))
        needed = np.clip(needed, pilot_size, max_samples).astype(np.int64)
        top_up = int(needed.max()) - pilot_size
        if top_up > 0:
            # Single shared top-up pool; query i consumes its first
            # (needed_i - pilot_size) contributions.  Blocked accumulation
            # keeps the transient matrix at O(queries x sample_block).
            remaining = needed - pilot_size
            for block_start in range(0, top_up, sample_block):
                block_stop = min(block_start + sample_block, top_up)
                draw = self._rng.integers(0, n, size=block_stop - block_start)
                contributions = self._contributions(lows, highs, draw, aggregate)
                take = np.clip(remaining - block_start, 0, block_stop - block_start)
                active = take > 0
                if not np.any(active):
                    break
                prefix = np.cumsum(contributions[active], axis=1)
                sums[active] += prefix[np.arange(np.count_nonzero(active)), take[active] - 1]
        return (sums / needed) * n

    def sampled_records_for(self, low: float, high: float, aggregate: Aggregate = Aggregate.COUNT) -> int:
        """Number of samples the stopping rule consumed for this query."""
        _, sampled = self._estimate(
            lambda idx: self._selection_mask_1d(low, high, idx), aggregate
        )
        return sampled


class SampledBTree:
    """S-tree heuristic: a B+tree over a uniform sample, scaled at query time."""

    def __init__(
        self,
        keys: np.ndarray,
        measures: np.ndarray | None = None,
        *,
        sample_fraction: float = 0.01,
        branching_factor: int = 64,
        seed: int = 7,
    ) -> None:
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size == 0:
            raise DataError("dataset is empty")
        if not 0 < sample_fraction <= 1.0:
            raise DataError("sample_fraction must be in (0, 1]")
        if measures is None:
            measures = np.ones_like(keys)
        measures = np.asarray(measures, dtype=np.float64)
        if measures.size != keys.size:
            raise DataError("keys and measures must have equal length")
        rng = np.random.default_rng(seed)
        sample_size = max(1, int(round(sample_fraction * keys.size)))
        chosen = rng.choice(keys.size, size=sample_size, replace=False)
        order = np.argsort(keys[chosen], kind="stable")
        sampled_keys = keys[chosen][order]
        sampled_measures = measures[chosen][order]
        self._tree = BPlusTree.from_sorted(
            sampled_keys, sampled_measures, branching_factor=branching_factor
        )
        self._scale = keys.size / sample_size
        self._sample_fraction = sample_fraction

    @property
    def sample_fraction(self) -> float:
        """Fraction of records retained in the sample."""
        return self._sample_fraction

    @property
    def scale(self) -> float:
        """Scale-up factor applied to sample aggregates."""
        return self._scale

    def range_estimate(self, low: float, high: float, aggregate: Aggregate = Aggregate.COUNT) -> float:
        """Estimate a one-key COUNT/SUM by scaling the sample aggregate."""
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("S-tree supports COUNT and SUM only")
        raw = self._tree.range_aggregate(low, high, aggregate.value)
        return raw * self._scale

    def range_estimate_batch(
        self, lows: np.ndarray, highs: np.ndarray, aggregate: Aggregate = Aggregate.COUNT
    ) -> np.ndarray:
        """Batch of :meth:`range_estimate` calls (per-query tree walks)."""
        if aggregate not in (Aggregate.COUNT, Aggregate.SUM):
            raise NotSupportedError("S-tree supports COUNT and SUM only")
        raw = self._tree.range_aggregate_batch(lows, highs, aggregate.value)
        return raw * self._scale

    def size_in_bytes(self) -> int:
        """Footprint of the underlying sampled B+tree."""
        return self._tree.size_in_bytes()
