"""Tests for query/result value types."""

import pytest

from repro import Aggregate, Guarantee, QueryResult, RangeQuery, RangeQuery2D
from repro.config import GuaranteeKind
from repro.errors import QueryError


class TestGuarantee:
    def test_absolute_factory(self):
        guarantee = Guarantee.absolute(100.0)
        assert guarantee.kind is GuaranteeKind.ABSOLUTE
        assert guarantee.epsilon == 100.0

    def test_relative_factory(self):
        guarantee = Guarantee.relative(0.01)
        assert guarantee.kind is GuaranteeKind.RELATIVE

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(QueryError):
            Guarantee.absolute(0.0)
        with pytest.raises(QueryError):
            Guarantee.relative(-0.1)

    def test_absolute_satisfied_by(self):
        guarantee = Guarantee.absolute(10.0)
        assert guarantee.satisfied_by(105.0, 100.0)
        assert not guarantee.satisfied_by(115.0, 100.0)

    def test_relative_satisfied_by(self):
        guarantee = Guarantee.relative(0.1)
        assert guarantee.satisfied_by(109.0, 100.0)
        assert not guarantee.satisfied_by(120.0, 100.0)

    def test_relative_zero_exact(self):
        guarantee = Guarantee.relative(0.1)
        assert guarantee.satisfied_by(0.0, 0.0)
        assert not guarantee.satisfied_by(1.0, 0.0)


class TestRangeQuery:
    def test_valid_query(self):
        query = RangeQuery(1.0, 5.0, Aggregate.SUM)
        assert query.width == 4.0

    def test_degenerate_range_allowed(self):
        assert RangeQuery(2.0, 2.0, Aggregate.COUNT).width == 0.0

    def test_invalid_range_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery(5.0, 1.0, Aggregate.COUNT)

    def test_frozen(self):
        query = RangeQuery(1.0, 2.0, Aggregate.COUNT)
        with pytest.raises(AttributeError):
            query.low = 0.0  # type: ignore[misc]


class TestRangeQuery2D:
    def test_valid_rectangle(self):
        query = RangeQuery2D(0.0, 2.0, 0.0, 3.0)
        assert query.area == 6.0
        assert query.aggregate is Aggregate.COUNT

    def test_invalid_rectangle_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery2D(2.0, 0.0, 0.0, 1.0)
        with pytest.raises(QueryError):
            RangeQuery2D(0.0, 1.0, 5.0, 1.0)


class TestQueryResult:
    def test_defaults(self):
        result = QueryResult(value=7.0)
        assert result.guaranteed
        assert not result.exact_fallback
        assert result.error_bound is None

    def test_fields(self):
        result = QueryResult(value=1.0, guaranteed=False, exact_fallback=True, error_bound=3.0)
        assert result.error_bound == 3.0
        assert result.exact_fallback
