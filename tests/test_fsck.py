"""fsck (offline integrity checking) and atomic-persistence regressions.

Covers the three artifact families end to end — codec files, WALs, fleet
directories — plus the CLI exit-code contract (0 clean / 1 corrupt) and the
kill-mid-write regression for the fleet manifest: a crash at *any* byte
offset of the manifest write must leave a directory that either loads as
the previous fleet (tmp leftovers pruned) or fails with a typed error —
never a silently wrong fleet.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Aggregate, IndexFleet, UpdatablePolyFitIndex, load_fleet, save_fleet
from repro.cli import main
from repro.config import FitConfig, IndexConfig, SegmentationConfig
from repro.errors import SerializationError
from repro.fleet import persistence
from repro.fsck import fsck_path
from repro.index.atomic import atomic_write
from repro.index.codec import save_index_binary
from repro.stream import WriteAheadLog
from repro.testing.faults import CrashPoint, FaultyFile, flip_bit

FAST = IndexConfig(fit=FitConfig(degree=1), segmentation=SegmentationConfig(delta=25.0))


def _keys(n=2000, seed=31):
    rng = np.random.default_rng(seed)
    return np.sort(rng.uniform(0.0, 1000.0, size=n))


@pytest.fixture
def codec_file(tmp_path):
    index = UpdatablePolyFitIndex.build(_keys(), aggregate=Aggregate.COUNT,
                                        delta=25.0, config=FAST)
    index.insert(np.array([1.5, 2.5]))
    path = tmp_path / "index.pfbin"
    save_index_binary(index, path)
    return path


@pytest.fixture
def wal_file(tmp_path):
    path = tmp_path / "ingest.wal"
    with WriteAheadLog(path) as wal:
        for i in range(6):
            wal.append_insert(np.arange(8, dtype=float) + i)
        wal.append_compaction(1)
    return path


@pytest.fixture
def fleet_dir(tmp_path):
    fleet = IndexFleet.build(_keys(), None, Aggregate.COUNT,
                             delta=25.0, config=FAST, num_partitions=3)
    directory = tmp_path / "fleet"
    save_fleet(fleet, directory)
    return directory


class TestFsckModule:
    def test_clean_codec(self, codec_file):
        report = fsck_path(codec_file)
        assert report.ok and report.artifact == "codec" and report.checked == 1

    def test_corrupt_codec_blob(self, codec_file):
        flip_bit(codec_file, codec_file.stat().st_size - 3)
        report = fsck_path(codec_file)
        assert not report.ok
        assert report.issues[0].kind == "codec-corrupt"
        assert "checksum" in report.issues[0].message

    def test_clean_wal(self, wal_file):
        report = fsck_path(wal_file)
        assert report.ok and report.artifact == "wal" and report.checked == 7

    def test_wal_mid_file_corruption(self, wal_file):
        flip_bit(wal_file, 20)  # inside the first frame, not the tail
        report = fsck_path(wal_file)
        assert not report.ok and report.issues[0].kind == "wal-corrupt"

    def test_wal_torn_tail_is_a_note_not_an_error(self, wal_file):
        data = wal_file.read_bytes()
        wal_file.write_bytes(data[:-4])
        report = fsck_path(wal_file)
        assert report.ok
        assert any("torn tail" in note for note in report.notes)

    def test_clean_fleet(self, fleet_dir):
        report = fsck_path(fleet_dir)
        assert report.ok and report.artifact == "fleet"
        assert report.checked >= 2  # manifest + at least one partition

    def test_fleet_missing_partition(self, fleet_dir):
        victim = next(fleet_dir.glob("partition-*.pfbin"))
        victim.unlink()
        report = fsck_path(fleet_dir)
        assert any(issue.kind == "partition-missing" for issue in report.issues)

    def test_fleet_corrupt_partition(self, fleet_dir):
        victim = next(fleet_dir.glob("partition-*.pfbin"))
        flip_bit(victim, victim.stat().st_size // 2)  # inside a data blob
        report = fsck_path(fleet_dir)
        assert any(issue.kind == "partition-corrupt" for issue in report.issues)

    def test_fleet_manifest_garbage(self, fleet_dir):
        (fleet_dir / "manifest.json").write_text("{not json")
        report = fsck_path(fleet_dir)
        assert report.issues[0].kind == "manifest-corrupt"

    def test_fleet_orphans_and_tmp_are_notes(self, fleet_dir):
        (fleet_dir / "partition-9999.pfbin").write_bytes(b"orphan")
        (fleet_dir / "manifest.json.tmp").write_bytes(b"stale")
        report = fsck_path(fleet_dir)
        assert report.ok
        assert any("unreferenced" in note for note in report.notes)
        assert any("tmp" in note for note in report.notes)

    def test_not_a_fleet_directory(self, tmp_path):
        report = fsck_path(tmp_path)
        assert not report.ok and report.issues[0].kind == "unreadable"

    def test_report_payload_round_trips_json(self, wal_file):
        payload = fsck_path(wal_file).to_payload()
        assert json.loads(json.dumps(payload)) == payload


class TestFsckCli:
    def test_exit_zero_when_clean(self, codec_file, wal_file, fleet_dir, capsys):
        assert main(["fsck", str(codec_file), str(wal_file), str(fleet_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count(": ok") == 3

    def test_exit_one_when_corrupt(self, codec_file, capsys):
        flip_bit(codec_file, codec_file.stat().st_size - 3)
        assert main(["fsck", str(codec_file)]) == 1
        assert "codec-corrupt" in capsys.readouterr().out

    def test_json_output(self, wal_file, capsys):
        assert main(["fsck", "--json", str(wal_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["artifact"] == "wal" and payload[0]["ok"]


class TestManifestAtomicity:
    def test_kill_mid_manifest_write_at_every_offset(self, tmp_path, monkeypatch):
        fleet = IndexFleet.build(_keys(seed=33), None, Aggregate.COUNT,
                                 delta=25.0, config=FAST, num_partitions=2)
        directory = tmp_path / "fleet"
        save_fleet(fleet, directory)
        lows = np.array([0.0, 250.0, 700.0])
        highs = np.array([1000.0, 400.0, 900.0])
        want = load_fleet(directory).snapshot().exact_batch(lows, highs)
        manifest_size = (directory / "manifest.json").stat().st_size

        for budget in range(0, manifest_size, max(1, manifest_size // 40)):
            def crashing_write(path, writer, _budget=budget):
                atomic_write(
                    path, writer,
                    opener=lambda tmp: FaultyFile(tmp, fail_after=_budget),
                )

            monkeypatch.setattr(persistence, "atomic_write", crashing_write)
            with pytest.raises(CrashPoint):
                save_fleet(fleet, directory)
            monkeypatch.undo()
            # The torn tmp file must not shadow the committed manifest.
            reloaded = load_fleet(directory)
            got = reloaded.snapshot().exact_batch(lows, highs)
            assert np.array_equal(got, want), f"budget {budget}"
            assert not list(directory.glob("*.tmp"))  # pruned on load

    def test_crash_on_first_save_fails_typed_never_partial(self, tmp_path, monkeypatch):
        fleet = IndexFleet.build(_keys(seed=34), None, Aggregate.COUNT,
                                 delta=25.0, config=FAST, num_partitions=2)
        directory = tmp_path / "fresh"

        def crashing_write(path, writer):
            atomic_write(path, writer, opener=lambda tmp: FaultyFile(tmp, fail_after=10))

        monkeypatch.setattr(persistence, "atomic_write", crashing_write)
        with pytest.raises(CrashPoint):
            save_fleet(fleet, directory)
        monkeypatch.undo()
        with pytest.raises(SerializationError):
            load_fleet(directory)

    def test_load_fleet_verify_checks_partition_checksums(self, fleet_dir):
        victim = sorted(fleet_dir.glob("partition-*.pfbin"))[-1]
        flip_bit(victim, victim.stat().st_size // 2)  # inside a data blob
        with pytest.raises(SerializationError, match="checksum"):
            load_fleet(fleet_dir, verify=True)
