"""Property tests for the flat cell-directory core.

The pointer structures (1-D segment list walk, 2-D quadtree descent) are the
correctness oracles; the flat directories must agree with them cell-for-cell
— including on cell-boundary and domain-edge coordinates, where tie-breaking
is easy to get wrong — and the flat arrays must survive serialization
verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Aggregate,
    PolyFitIndex,
    QuadDirectory,
    RangeQuery2D,
    SegmentDirectory,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)
from repro.errors import QueryError, SerializationError
from repro.fitting.quadtree import linearize_quadtree, morton_interleave2
from repro.index.directory import RangeExtremeTable, _axis_cells, _dyadic_boundaries


class TestMortonLinearization:
    def test_codes_strictly_increasing(self, count2d_index):
        _, codes, depth = linearize_quadtree(count2d_index._root)
        assert depth >= 1
        assert np.all(codes[1:] > codes[:-1])

    def test_directory_row_order_matches_linearization(self, count2d_index):
        leaves, codes, depth = linearize_quadtree(count2d_index._root)
        directory = count2d_index.directory
        assert len(directory) == len(leaves)
        assert directory.depth == depth
        assert np.array_equal(directory.keys, codes)
        for row, leaf in enumerate(leaves):
            assert directory.lows[row, 0] == leaf.x_low
            assert directory.highs[row, 1] == leaf.y_high
            assert bool(directory.exact_mask[row]) == leaf.is_exact

    def test_morton_interleave_bits(self):
        gx = np.array([0, 1, 0, 1, 2, 3], dtype=np.uint64)
        gy = np.array([0, 0, 1, 1, 2, 3], dtype=np.uint64)
        codes = morton_interleave2(gx, gy)
        assert codes.tolist() == [0, 1, 2, 3, 12, 15]


class TestLocateEquivalence:
    """Morton-linearized lookup must agree with pointer-tree ``locate``."""

    def _expected_rows(self, index, us, vs):
        leaves, _, _ = linearize_quadtree(index._root)
        leaf_rows = {id(leaf): row for row, leaf in enumerate(leaves)}
        return np.array(
            [leaf_rows[id(index._root.locate(u, v))] for u, v in zip(us, vs)],
            dtype=np.intp,
        )

    def test_random_points_agree(self, count2d_index):
        xmin, xmax, ymin, ymax = count2d_index._bounds
        rng = np.random.default_rng(17)
        us = rng.uniform(xmin, xmax, 3000)
        vs = rng.uniform(ymin, ymax, 3000)
        rows = count2d_index.directory.locate_batch(us, vs)
        assert np.array_equal(rows, self._expected_rows(count2d_index, us, vs))

    def test_cell_boundary_coordinates_agree(self, count2d_index):
        """Leaf corners and split lines hit the exact tie-break paths."""
        directory = count2d_index.directory
        xmin, xmax, ymin, ymax = count2d_index._bounds
        us = np.concatenate((directory.lows[:, 0], directory.highs[:, 0]))
        vs = np.concatenate((directory.lows[:, 1], directory.highs[:, 1]))
        us = np.clip(us, xmin, xmax)
        vs = np.clip(vs, ymin, ymax)
        rows = directory.locate_batch(us, vs)
        assert np.array_equal(rows, self._expected_rows(count2d_index, us, vs))

    def test_domain_edges_agree(self, count2d_index):
        xmin, xmax, ymin, ymax = count2d_index._bounds
        x_mid = (xmin + xmax) / 2.0
        y_mid = (ymin + ymax) / 2.0
        us = np.array([xmin, xmin, xmax, xmax, x_mid, xmin, xmax, x_mid])
        vs = np.array([ymin, ymax, ymin, ymax, y_mid, y_mid, y_mid, ymin])
        rows = count2d_index.directory.locate_batch(us, vs)
        assert np.array_equal(rows, self._expected_rows(count2d_index, us, vs))

    def test_evaluation_matches_scalar_corner(self, count2d_index):
        xmin, xmax, ymin, ymax = count2d_index._bounds
        rng = np.random.default_rng(23)
        us = rng.uniform(xmin, xmax, 1500)
        vs = rng.uniform(ymin, ymax, 1500)
        directory = count2d_index.directory
        rows = directory.locate_batch(us, vs)
        batch = directory.evaluate_batch(rows, us, vs)
        scalar = np.array([count2d_index._corner(u, v) for u, v in zip(us, vs)])
        assert np.allclose(batch, scalar)

    def test_exact_cells_hit_and_agree(self, osm_small):
        """Points inside exact cells take the nearest-grid-sample gather."""
        from repro import PolyFit2DIndex
        from repro.config import QuadTreeConfig

        xs, ys = osm_small
        # A tight budget with a shallow depth cap forces depth-exhausted
        # exact leaves; a generous min_cell_points adds small-sample ones.
        index = PolyFit2DIndex.build(
            xs, ys, delta=5.0, grid_resolution=32,
            config=QuadTreeConfig(max_depth=3, min_cell_points=40),
        )
        directory = index.directory
        exact_rows = np.nonzero(directory.exact_mask)[0]
        assert exact_rows.size > 0
        count2d_index = index
        rng = np.random.default_rng(29)
        centers_u = rng.uniform(
            directory.lows[exact_rows, 0], directory.highs[exact_rows, 0]
        )
        centers_v = rng.uniform(
            directory.lows[exact_rows, 1], directory.highs[exact_rows, 1]
        )
        rows = directory.locate_batch(centers_u, centers_v)
        values = directory.evaluate_batch(rows, centers_u, centers_v)
        scalar = np.array(
            [count2d_index._corner(u, v) for u, v in zip(centers_u, centers_v)]
        )
        assert np.allclose(values, scalar)

    def test_locate_fast_paths_match_descent(self, count2d_index):
        """Arithmetic cells and the row table agree with the level descent."""
        directory = count2d_index.directory
        xmin, xmax, ymin, ymax = count2d_index._bounds
        rng = np.random.default_rng(31)
        us = np.concatenate(
            (rng.uniform(xmin, xmax, 2000), directory._x_boundaries)
        )
        vs = np.concatenate(
            (rng.uniform(ymin, ymax, 2000),
             np.resize(directory._y_boundaries, directory._x_boundaries.size))
        )
        gx_descent, gy_descent = directory._locate_descent(us, vs)
        gx_fast = _axis_cells(us, directory._x_boundaries, directory._x_scale)
        gy_fast = _axis_cells(vs, directory._y_boundaries, directory._y_scale)
        assert np.array_equal(gx_fast, gx_descent.astype(np.intp))
        assert np.array_equal(gy_fast, gy_descent.astype(np.intp))

    def test_dyadic_boundaries_match_tree_splits(self, count2d_index):
        """Every leaf edge value appears verbatim in the boundary arrays."""
        directory = count2d_index.directory
        x_values = set(directory._x_boundaries.tolist())
        y_values = set(directory._y_boundaries.tolist())
        for value in directory.lows[:, 0].tolist() + directory.highs[:, 0].tolist():
            assert value in x_values
        for value in directory.lows[:, 1].tolist() + directory.highs[:, 1].tolist():
            assert value in y_values

    def test_degenerate_boundaries_rejected(self):
        assert _dyadic_boundaries(1.0, 1.0, 3) is None
        boundaries = _dyadic_boundaries(0.0, 8.0, 3)
        assert boundaries is not None
        assert np.array_equal(boundaries, np.arange(9.0))


class TestSegmentDirectoryCore:
    def test_flat_arrays_describe_segments(self, count_index):
        directory = count_index._directory
        assert isinstance(directory, SegmentDirectory)
        assert len(directory) == count_index.num_segments
        for row, segment in enumerate(count_index.segments):
            assert directory.lows[row] == segment.key_low
            assert directory.highs[row] == segment.key_high
            assert directory.errors[row] == segment.max_error
        assert not directory.exact_mask.any()
        assert directory.size_in_bytes() > 0

    def test_locate_batch_matches_scalar(self, count_index, tweet_small):
        keys, _ = tweet_small
        directory = count_index._directory
        rng = np.random.default_rng(5)
        probes = np.concatenate(
            (rng.uniform(keys[0] - 10, keys[-1] + 10, 500),
             directory.lows, directory.highs)
        )
        batch = directory.locate_batch(probes)
        scalar = np.array([directory.locate(k) for k in probes])
        assert np.array_equal(batch, scalar)

    def test_extremes_attached_lazily_for_extremum(self, count_index, max_index, hki_small):
        assert count_index._directory.extremes is None
        keys, _ = hki_small
        # First batch extreme query attaches the payload; COUNT never does.
        max_index.estimate_batch(keys[:4], keys[4:8])
        assert max_index._directory.extremes is not None
        assert max_index._directory.extremes.size_in_bytes() > 0

    def test_attach_extremes_rejects_cumulative(self, count_index, tweet_small):
        keys, _ = tweet_small
        with pytest.raises(QueryError):
            count_index._directory.attach_extremes(
                keys, np.ones_like(keys), Aggregate.COUNT
            )

    def test_attach_extremes_rejects_opposite_aggregate(self, max_index, hki_small):
        keys, measures = hki_small
        max_index.estimate_batch(keys[:4], keys[4:8])  # trigger lazy attach
        directory = max_index._directory
        assert directory.extremes is not None and directory.extremes.maximize
        # Same aggregate: idempotent no-op.
        directory.attach_extremes(
            max_index._key_measure.keys, max_index._key_measure.measures, Aggregate.MAX
        )
        with pytest.raises(QueryError):
            directory.attach_extremes(
                max_index._key_measure.keys,
                max_index._key_measure.measures,
                Aggregate.MIN,
            )


class TestRangeExtremeTable:
    @pytest.mark.parametrize("maximize", [True, False], ids=["max", "min"])
    @pytest.mark.parametrize("size", [1, 7, 64, 65, 513])
    def test_matches_bruteforce(self, maximize, size):
        rng = np.random.default_rng(size)
        values = rng.normal(size=size)
        table = RangeExtremeTable(values, maximize=maximize)
        lo = rng.integers(0, size, 300)
        hi = np.array([rng.integers(low, size) for low in lo])
        got = table.query(lo, hi)
        expected = np.array(
            [values[low: high + 1].max() if maximize else values[low: high + 1].min()
             for low, high in zip(lo, hi)]
        )
        assert np.array_equal(got, expected)

    def test_rejects_bad_windows(self):
        table = RangeExtremeTable(np.arange(10.0), maximize=True)
        with pytest.raises(QueryError):
            table.query(np.array([3]), np.array([2]))
        with pytest.raises(QueryError):
            table.query(np.array([0]), np.array([10]))


class TestDirectorySerialization:
    def test_1d_flat_arrays_round_trip(self, count_index):
        clone = index_from_dict(index_to_dict(count_index))
        original = count_index._directory
        restored = clone._directory
        assert np.array_equal(original.keys, restored.keys)
        assert np.array_equal(original.lows, restored.lows)
        assert np.array_equal(original.highs, restored.highs)
        assert np.array_equal(original.errors, restored.errors)
        assert np.array_equal(original.bank.coeffs, restored.bank.coeffs)

    def test_2d_flat_arrays_round_trip(self, count2d_index):
        clone = index_from_dict(index_to_dict(count2d_index))
        original = count2d_index.directory
        restored = clone.directory
        assert isinstance(restored, QuadDirectory)
        assert restored.depth == original.depth
        assert restored.root_bounds == original.root_bounds
        assert np.array_equal(original.keys, restored.keys)
        assert np.array_equal(original.lows, restored.lows)
        assert np.array_equal(original.highs, restored.highs)
        assert np.array_equal(original.errors, restored.errors)
        assert np.array_equal(original.exact_mask, restored.exact_mask)
        assert np.array_equal(original.exact_ranges, restored.exact_ranges)
        assert np.array_equal(original.surfaces.coeffs, restored.surfaces.coeffs)
        assert restored.size_in_bytes() == original.size_in_bytes()

    def test_2d_round_trip_answers_agree(self, count2d_index, osm_small, tmp_path):
        xs, ys = osm_small
        path = tmp_path / "index2d.json"
        save_index(count2d_index, path)
        clone = load_index(path)
        rng = np.random.default_rng(41)
        x1 = rng.uniform(xs.min(), xs.max(), 40)
        x2 = np.maximum(x1, rng.uniform(xs.min(), xs.max(), 40))
        y1 = rng.uniform(ys.min(), ys.max(), 40)
        y2 = np.maximum(y1, rng.uniform(ys.min(), ys.max(), 40))
        assert np.array_equal(
            clone.estimate_batch(x1, x2, y1, y2),
            count2d_index.estimate_batch(x1, x2, y1, y2),
        )
        query = RangeQuery2D(float(x1[0]), float(x2[0]), float(y1[0]), float(y2[0]))
        assert clone.query(query).value == count2d_index.query(query).value
        assert clone.exact(query) == count2d_index.exact(query)

    def test_2d_wrong_version_rejected(self, count2d_index):
        payload = index_to_dict(count2d_index)
        payload["format_version"] = 999
        with pytest.raises(SerializationError):
            index_from_dict(payload)

    def test_2d_malformed_directory_rejected(self, count2d_index):
        payload = index_to_dict(count2d_index)
        del payload["directory"]["keys"]
        with pytest.raises(SerializationError):
            index_from_dict(payload)

    def test_2d_unsorted_morton_keys_rejected(self, count2d_index):
        payload = index_to_dict(count2d_index)
        keys = payload["directory"]["keys"]
        keys[0], keys[-1] = keys[-1], keys[0]
        with pytest.raises(SerializationError):
            index_from_dict(payload)


class TestExtremeBatchAgainstScalarLoop:
    """The vectorized extreme path vs an explicit per-query reference loop.

    test_batch_equivalence already pins the batch path to the scalar oracle;
    this adds adversarial windows (single-sample, whole-segment, single
    segment interior, all segments) sized to hit every branch of the
    prefix/suffix + interior-table decomposition.
    """

    @pytest.mark.parametrize("aggregate", [Aggregate.MAX, Aggregate.MIN], ids=["max", "min"])
    def test_adversarial_windows(self, small_keys_measures, aggregate):
        keys, measures = small_keys_measures
        index = PolyFitIndex.build(keys, measures, aggregate=aggregate, delta=25.0)
        segments = index.segments
        lows, highs = [], []
        for segment in segments[:10]:
            span_keys = keys[segment.start: segment.stop]
            lows.append(span_keys[0]); highs.append(span_keys[-1])          # whole segment
            mid = span_keys[len(span_keys) // 2]
            lows.append(mid); highs.append(mid)                              # single sample
            if span_keys.size > 2:
                lows.append(span_keys[1]); highs.append(span_keys[-2])       # strict interior
        lows.append(keys[0]); highs.append(keys[-1])                         # all segments
        lows.append(keys[0]); highs.append(keys[min(1, keys.size - 1)])      # tiny prefix
        lows, highs = np.asarray(lows), np.asarray(highs)
        batch = index.estimate_batch(lows, highs)
        from repro.queries.types import RangeQuery

        scalar = np.array(
            [index.estimate(RangeQuery(low, high, aggregate)) for low, high in zip(lows, highs)]
        )
        assert np.allclose(batch, scalar, equal_nan=True)
