"""Property-based tests for baseline data structures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Aggregate
from repro.baselines import (
    AggregateSegmentTree,
    BPlusTree,
    BruteForceAggregator,
    EntropyHistogram,
    KeyCumulativeArray,
)


_key_measure_sets = st.integers(min_value=2, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
            unique=True,
        ),
        st.lists(
            st.floats(min_value=0, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
    )
)

_ranges = st.tuples(
    st.floats(min_value=-1.2e4, max_value=1.2e4, allow_nan=False),
    st.floats(min_value=-1.2e4, max_value=1.2e4, allow_nan=False),
)


class TestKeyCumulativeArrayProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=_key_measure_sets, query=_ranges)
    def test_matches_brute_force_sum(self, data, query):
        keys = np.asarray(data[0])
        measures = np.asarray(data[1])
        low, high = min(query), max(query)
        kca = KeyCumulativeArray.build(keys, measures)
        brute = BruteForceAggregator(keys, measures)
        assert kca.range_aggregate(low, high) == pytest.approx(
            brute.range_aggregate(low, high, Aggregate.SUM), rel=1e-9, abs=1e-6
        )

    @settings(max_examples=30, deadline=None)
    @given(data=_key_measure_sets)
    def test_cumulative_monotone(self, data):
        kca = KeyCumulativeArray.build(np.asarray(data[0]), np.asarray(data[1]))
        assert np.all(np.diff(kca.cumulative) >= -1e-9)


class TestAggregateTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=_key_measure_sets, query=_ranges,
           aggregate=st.sampled_from([Aggregate.MAX, Aggregate.MIN, Aggregate.SUM]))
    def test_matches_brute_force(self, data, query, aggregate):
        keys = np.asarray(data[0])
        measures = np.asarray(data[1])
        low, high = min(query), max(query)
        tree = AggregateSegmentTree(keys, measures, aggregate)
        brute = BruteForceAggregator(keys, measures)
        expected = brute.range_aggregate(low, high, aggregate)
        got = tree.range_query(low, high)
        if np.isnan(expected):
            assert np.isnan(got) or got == 0.0 and aggregate is Aggregate.SUM
        else:
            assert got == pytest.approx(expected, rel=1e-9, abs=1e-6)


class TestBPlusTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=80,
            unique=True,
        ),
        branching=st.integers(min_value=4, max_value=16),
    )
    def test_insert_then_iterate_matches_sorted(self, keys, branching):
        tree = BPlusTree(branching_factor=branching)
        for key in keys:
            tree.insert(key, key)
        assert tree.keys() == sorted(keys)
        assert tree.size == len(keys)

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=60,
            unique=True,
        ),
        query=_ranges,
    )
    def test_range_count_matches_numpy(self, keys, query):
        low, high = min(query), max(query)
        sorted_keys = np.sort(np.asarray(keys))
        tree = BPlusTree.from_sorted(sorted_keys, branching_factor=8)
        expected = int(np.count_nonzero((sorted_keys >= low) & (sorted_keys <= high)))
        assert tree.range_aggregate(low, high, "count") == expected


class TestHistogramProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=_key_measure_sets, buckets=st.integers(min_value=1, max_value=64))
    def test_total_mass_preserved(self, data, buckets):
        keys = np.asarray(data[0])
        hist = EntropyHistogram(keys, num_buckets=buckets)
        assert hist.masses.sum() == pytest.approx(keys.size, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(data=_key_measure_sets, buckets=st.integers(min_value=1, max_value=64))
    def test_full_domain_estimate_is_total(self, data, buckets):
        keys = np.asarray(data[0])
        hist = EntropyHistogram(keys, num_buckets=buckets)
        span = keys.max() - keys.min() + 1.0
        estimate = hist.range_estimate(keys.min() - span, keys.max() + span)
        assert estimate == pytest.approx(keys.size, rel=1e-9, abs=1e-6)
