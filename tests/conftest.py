"""Shared pytest fixtures: small deterministic datasets and built indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Aggregate, Guarantee, IndexConfig, PolyFitIndex, PolyFit2DIndex
from repro.config import FitConfig, SegmentationConfig
from repro.datasets import osm_points, stock_index_walk, tweet_latitudes


@pytest.fixture(scope="session")
def small_keys_measures() -> tuple[np.ndarray, np.ndarray]:
    """A small sorted (key, measure) dataset with non-trivial structure."""
    rng = np.random.default_rng(0)
    keys = np.sort(rng.uniform(0.0, 1000.0, size=500))
    keys += np.arange(keys.size) * 1e-9  # make strictly increasing
    measures = 10.0 + 5.0 * np.sin(keys / 50.0) + rng.uniform(0.0, 2.0, size=keys.size)
    return keys, measures


@pytest.fixture(scope="session")
def tweet_small() -> tuple[np.ndarray, np.ndarray]:
    """Scaled-down synthetic TWEET dataset (1-D latitudes)."""
    return tweet_latitudes(4000, seed=11)


@pytest.fixture(scope="session")
def hki_small() -> tuple[np.ndarray, np.ndarray]:
    """Scaled-down synthetic HKI dataset (timestamp, index value)."""
    return stock_index_walk(4000, seed=7)


@pytest.fixture(scope="session")
def osm_small() -> tuple[np.ndarray, np.ndarray]:
    """Scaled-down synthetic OSM dataset (2-D points)."""
    return osm_points(6000, seed=13)


@pytest.fixture(scope="session")
def fast_config() -> IndexConfig:
    """Degree-2 index configuration used by most index tests."""
    return IndexConfig(
        fit=FitConfig(degree=2),
        segmentation=SegmentationConfig(delta=50.0, method="greedy-exponential"),
    )


@pytest.fixture(scope="session")
def count_index(tweet_small, fast_config) -> PolyFitIndex:
    """A COUNT index over the small TWEET dataset with eps_abs = 100."""
    keys, _ = tweet_small
    return PolyFitIndex.build(
        keys,
        aggregate=Aggregate.COUNT,
        guarantee=Guarantee.absolute(100.0),
        config=fast_config,
    )


@pytest.fixture(scope="session")
def max_index(hki_small, fast_config) -> PolyFitIndex:
    """A MAX index over the small HKI dataset with eps_abs = 100."""
    keys, measures = hki_small
    return PolyFitIndex.build(
        keys,
        measures,
        aggregate=Aggregate.MAX,
        guarantee=Guarantee.absolute(100.0),
        config=fast_config,
    )


@pytest.fixture(scope="session")
def count2d_index(osm_small) -> PolyFit2DIndex:
    """A two-key COUNT index over the small OSM dataset with eps_abs = 1000."""
    xs, ys = osm_small
    return PolyFit2DIndex.build(
        xs, ys, guarantee=Guarantee.absolute(1000.0), grid_resolution=48
    )
