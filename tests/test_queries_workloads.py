"""Tests for workload generators."""

import numpy as np
import pytest

from repro import Aggregate, generate_range_queries, generate_rectangle_queries
from repro.errors import DataError
from repro.queries.workloads import WorkloadSpec


class TestGenerateRangeQueries:
    def test_count_and_validity(self):
        keys = np.linspace(0, 100, 500)
        queries = generate_range_queries(keys, 200, Aggregate.COUNT, seed=1)
        assert len(queries) == 200
        for query in queries:
            assert query.low <= query.high
            assert query.aggregate is Aggregate.COUNT

    def test_endpoints_come_from_keys(self):
        keys = np.array([1.0, 5.0, 9.0, 13.0])
        queries = generate_range_queries(keys, 50, seed=2)
        key_set = set(keys.tolist())
        for query in queries:
            assert query.low in key_set
            assert query.high in key_set

    def test_reproducible(self):
        keys = np.linspace(0, 10, 100)
        a = generate_range_queries(keys, 20, seed=3)
        b = generate_range_queries(keys, 20, seed=3)
        assert [(q.low, q.high) for q in a] == [(q.low, q.high) for q in b]

    def test_min_width_fraction(self):
        keys = np.linspace(0, 100, 1000)
        queries = generate_range_queries(keys, 50, seed=4, min_width_fraction=0.2)
        for query in queries:
            assert query.width >= 20.0 - 1e-9

    def test_rejects_too_few_keys(self):
        with pytest.raises(DataError):
            generate_range_queries(np.array([1.0]), 10)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(DataError):
            generate_range_queries(np.linspace(0, 1, 10), 0)

    def test_rejects_bad_width_fraction(self):
        with pytest.raises(DataError):
            generate_range_queries(np.linspace(0, 1, 10), 5, min_width_fraction=1.0)


class TestGenerateRectangleQueries:
    def test_count_and_validity(self):
        rng = np.random.default_rng(5)
        xs = rng.uniform(0, 100, size=400)
        ys = rng.uniform(0, 50, size=400)
        queries = generate_rectangle_queries(xs, ys, 100, seed=6)
        assert len(queries) == 100
        for query in queries:
            assert query.x_low <= query.x_high
            assert query.y_low <= query.y_high
            assert xs.min() - 1e-9 <= query.x_low
            assert query.x_high <= xs.max() + 1e-9

    def test_extent_cap(self):
        rng = np.random.default_rng(7)
        xs = rng.uniform(0, 100, size=300)
        ys = rng.uniform(0, 100, size=300)
        queries = generate_rectangle_queries(xs, ys, 80, seed=8, max_extent_fraction=0.1)
        x_span = xs.max() - xs.min()
        for query in queries:
            assert query.x_high - query.x_low <= 0.1 * x_span + 1e-9

    def test_reproducible(self):
        rng = np.random.default_rng(9)
        xs = rng.uniform(0, 1, size=100)
        ys = rng.uniform(0, 1, size=100)
        a = generate_rectangle_queries(xs, ys, 10, seed=10)
        b = generate_rectangle_queries(xs, ys, 10, seed=10)
        assert [(q.x_low, q.y_high) for q in a] == [(q.x_low, q.y_high) for q in b]

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            generate_rectangle_queries(np.array([]), np.array([]), 10)

    def test_rejects_mismatched(self):
        with pytest.raises(DataError):
            generate_rectangle_queries(np.array([1.0]), np.array([1.0, 2.0]), 10)

    def test_rejects_bad_extent(self):
        xs = np.linspace(0, 1, 10)
        with pytest.raises(DataError):
            generate_rectangle_queries(xs, xs, 10, max_extent_fraction=0.0)


class TestWorkloadSpec:
    def test_fields(self):
        spec = WorkloadSpec(name="tweet-count", num_queries=1000,
                            aggregate=Aggregate.COUNT, seed=123, dataset="tweet")
        assert spec.name == "tweet-count"
        assert spec.aggregate is Aggregate.COUNT
