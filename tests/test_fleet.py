"""Tests for the partitioned index fleet: routing, merging, rebalancing.

The correctness pins, in increasing strength:

* ``PartitionMap`` ownership is exhaustive and exclusive (every key has
  exactly one partition; clips tile a query range without overlap);
* fleet ``exact_batch`` answers are **bit-identical** to a monolithic
  single-index oracle for COUNT/MAX/MIN and integer-measure SUM — across a
  hypothesis sweep of random partition maps (including empty partitions)
  and random query batches (including boundary-straddling ones);
* merged estimates stay within the per-query merged certified bound, and
  ``query_batch`` answers satisfy both guarantee kinds against the
  monolithic exact oracle;
* an all-NaN MAX partial over an empty clip never poisons the merged
  answer (the NaN-handling regression the router's fmax/fmin merge pins);
* split/merge rebalancing and the save/load round trip preserve answers,
  and snapshots pinned before a mutation keep serving their epoch.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Aggregate,
    CompactionPolicy,
    Fleet2D,
    FleetPolicy,
    FleetRouter,
    Guarantee,
    IndexFleet,
    PartitionMap,
    PolyFitIndex,
    PolyFit2DIndex,
    RangeQuery,
    load_fleet,
    save_fleet,
)
from repro.config import FitConfig, IndexConfig, SegmentationConfig
from repro.errors import DataError, QueryError, SerializationError
from repro.fleet import Partition, is_fleet_dir
from repro.fleet.partition import EmptyPartitionView
from repro.queries.batch import resolve_batch_certificates

FAST = IndexConfig(fit=FitConfig(degree=1), segmentation=SegmentationConfig(delta=25.0))

ALL_AGGREGATES = [Aggregate.COUNT, Aggregate.SUM, Aggregate.MAX, Aggregate.MIN]


def _dataset(n=4000, seed=0, key_range=(0.0, 1000.0)):
    rng = np.random.default_rng(seed)
    keys = rng.uniform(*key_range, size=n)
    measures = rng.integers(1, 60, size=n).astype(np.float64)
    return keys, measures


def _queries(m=300, seed=1, lo=-120.0, hi=1120.0):
    rng = np.random.default_rng(seed)
    lows = rng.uniform(lo, hi, size=m)
    highs = lows + rng.uniform(0.0, (hi - lo) * 0.6, size=m)
    return lows, highs


def _build_pair(aggregate, keys, measures, **fleet_kwargs):
    m = None if aggregate is Aggregate.COUNT else measures
    fleet = IndexFleet.build(keys, m, aggregate, delta=25.0, config=FAST, **fleet_kwargs)
    mono = PolyFitIndex.build(keys, m, aggregate, delta=25.0, config=FAST)
    return fleet, mono


def _satisfies_relative(values, exact, eps):
    for value, truth in zip(values, exact):
        if np.isnan(truth):
            assert np.isnan(value)
        elif truth == 0:
            assert value == 0
        else:
            assert abs(value - truth) / abs(truth) <= eps + 1e-9
    return True


# --------------------------------------------------------------------- #
# PartitionMap
# --------------------------------------------------------------------- #


class TestPartitionMap:
    def test_empty_splits_is_one_partition(self):
        pmap = PartitionMap([])
        assert pmap.num_partitions == 1
        assert pmap.lower_bound(0) == -np.inf
        assert pmap.upper_bound(0) == np.inf
        assert np.all(pmap.locate([-1e300, 0.0, 1e300]) == 0)

    def test_split_key_belongs_to_right_partition(self):
        pmap = PartitionMap([10.0, 20.0])
        assert pmap.locate(10.0) == 1  # closed below, open above
        assert pmap.locate(np.nextafter(10.0, -np.inf)) == 0
        assert pmap.locate(20.0) == 2

    def test_clip_tiles_without_overlap(self):
        pmap = PartitionMap([10.0, 20.0])
        lows = np.array([5.0])
        highs = np.array([25.0])
        clips = [pmap.clip(pid, lows, highs) for pid in range(3)]
        assert clips[0] == (5.0, np.nextafter(10.0, -np.inf))
        assert clips[1] == (10.0, np.nextafter(20.0, -np.inf))
        assert clips[2] == (20.0, 25.0)
        # inclusive-upper of partition i is strictly below lower of i+1
        for pid in range(2):
            assert pmap.inclusive_upper_bound(pid) < pmap.lower_bound(pid + 1)

    def test_with_split_and_merge_roundtrip(self):
        pmap = PartitionMap([10.0])
        grown = pmap.with_split(1, 20.0)
        assert grown.to_payload() == [10.0, 20.0]
        assert grown.with_merge(1) == pmap
        assert PartitionMap.from_payload(grown.to_payload()) == grown

    def test_validation(self):
        with pytest.raises(DataError):
            PartitionMap([2.0, 1.0])  # not increasing
        with pytest.raises(DataError):
            PartitionMap([np.inf])
        pmap = PartitionMap([10.0])
        with pytest.raises(DataError):
            pmap.with_split(0, 10.0)  # on the boundary, not strictly inside
        with pytest.raises(DataError):
            pmap.with_split(0, 15.0)  # inside partition 1, not 0
        with pytest.raises(DataError):
            pmap.with_merge(1)  # last partition has no right neighbour
        with pytest.raises(DataError):
            pmap.lower_bound(2)


# --------------------------------------------------------------------- #
# FleetPolicy
# --------------------------------------------------------------------- #


class TestFleetPolicy:
    def test_thresholds(self):
        policy = FleetPolicy(max_keys=100, merge_keys=30, max_bytes=10_000)
        assert policy.should_split(101, 0)
        assert not policy.should_split(100, 0)
        assert policy.should_split(0, 10_001)
        assert policy.should_merge(30)
        assert not policy.should_merge(31)

    def test_disabled_by_default(self):
        policy = FleetPolicy()
        assert not policy.should_split(10**9, 10**12)
        assert not policy.should_merge(0)

    def test_validation(self):
        with pytest.raises(DataError):
            FleetPolicy(max_keys=1)
        with pytest.raises(DataError):
            FleetPolicy(max_keys=10, merge_keys=10)  # merge would re-split
        with pytest.raises(DataError):
            FleetPolicy(max_bytes=0)

    def test_payload_roundtrip(self):
        policy = FleetPolicy(
            max_keys=500,
            merge_keys=100,
            auto=True,
            compaction=CompactionPolicy(max_buffer=64, auto=False),
        )
        assert FleetPolicy.from_payload(policy.to_payload()) == policy


# --------------------------------------------------------------------- #
# Oracle equivalence (deterministic)
# --------------------------------------------------------------------- #


class TestOracleEquivalence:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_exact_matches_monolithic(self, aggregate):
        keys, measures = _dataset()
        fleet, mono = _build_pair(aggregate, keys, measures, num_partitions=5)
        lows, highs = _queries()
        fleet_exact = fleet.exact_batch(lows, highs)
        mono_exact = mono.exact_batch(lows, highs)
        # COUNT sums integers, MAX/MIN take maxima of partition extremes,
        # and SUM with integer measures stays under 2^53: all bit-identical.
        assert np.array_equal(fleet_exact, mono_exact, equal_nan=True)

    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_estimates_within_merged_bounds(self, aggregate):
        keys, measures = _dataset()
        fleet, mono = _build_pair(aggregate, keys, measures, num_partitions=5)
        lows, highs = _queries()
        estimates = fleet.estimate_batch(lows, highs)
        bounds = fleet.snapshot().error_bounds_batch(lows, highs)
        exact = mono.exact_batch(lows, highs)
        nan = np.isnan(exact)
        assert np.all(np.isnan(estimates[nan]))
        assert np.all(np.abs(estimates[~nan] - exact[~nan]) <= bounds[~nan] + 1e-9)

    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_relative_guarantee_certified(self, aggregate):
        keys, measures = _dataset()
        fleet, mono = _build_pair(aggregate, keys, measures, num_partitions=5)
        lows, highs = _queries()
        result = fleet.query_batch(lows, highs, Guarantee.relative(0.05))
        assert bool(result.guaranteed.all())
        _satisfies_relative(result.values, mono.exact_batch(lows, highs), 0.05)
        # fallbacks answered exactly, with a zeroed bound
        fallback = result.exact_fallback
        assert np.array_equal(
            result.values[fallback],
            mono.exact_batch(lows[fallback], highs[fallback]),
            equal_nan=True,
        )
        assert np.all(result.error_bounds[fallback] == 0.0)

    def test_absolute_guarantee_is_per_query(self):
        keys, measures = _dataset()
        fleet, _ = _build_pair(Aggregate.COUNT, keys, measures, num_partitions=5)
        lows, highs = _queries()
        bounds = fleet.snapshot().error_bounds_batch(lows, highs)
        # pick a budget between min and max merged bound so the outcome is
        # genuinely per query: single-partition queries pass, straddlers fail
        assert bounds.min() < bounds.max()
        budget = float((bounds.min() + bounds.max()) / 2)
        result = fleet.query_batch(lows, highs, Guarantee.absolute(budget))
        assert np.array_equal(result.guaranteed, bounds <= budget + 1e-12)
        assert not result.exact_fallback.any()  # PolyFit semantics: no fallback

    def test_boundary_queries_match_monolithic(self):
        keys, measures = _dataset()
        splits = [250.0, 500.0, 750.0]
        fleet, mono = _build_pair(Aggregate.COUNT, keys, measures, splits=splits)
        # ranges whose bounds sit exactly on split keys, degenerate
        # single-point ranges on a split, and the full domain
        lows = np.array([250.0, 250.0, 0.0, 500.0, -1e6])
        highs = np.array([750.0, 250.0, 500.0, 500.0, 1e6])
        assert np.array_equal(
            fleet.exact_batch(lows, highs), mono.exact_batch(lows, highs)
        )

    def test_scalar_query_surface(self):
        keys, measures = _dataset(n=800)
        fleet, mono = _build_pair(Aggregate.SUM, keys, measures, num_partitions=3)
        probe = RangeQuery(100.0, 900.0, Aggregate.SUM)
        assert fleet.exact(probe) == pytest.approx(mono.exact(probe))
        result = fleet.query(probe, Guarantee.relative(0.05))
        assert result.guaranteed
        assert result.value == pytest.approx(mono.exact(probe), rel=0.05)


# --------------------------------------------------------------------- #
# Oracle equivalence (hypothesis sweep)
# --------------------------------------------------------------------- #


@st.composite
def fleet_case(draw):
    n = draw(st.integers(min_value=20, max_value=80))
    # integer keys/measures: heavy duplication, and SUM partials stay
    # bit-identical under re-association
    keys = np.array(
        draw(st.lists(st.integers(0, 400), min_size=n, max_size=n)), dtype=np.float64
    )
    measures = np.array(
        draw(st.lists(st.integers(1, 50), min_size=n, max_size=n)), dtype=np.float64
    )
    # split keys may fall outside the key domain -> empty partitions
    splits = sorted(
        draw(st.sets(st.integers(-100, 500), min_size=0, max_size=5))
    )
    m = draw(st.integers(min_value=5, max_value=15))
    lows = np.array(
        draw(st.lists(st.integers(-150, 550), min_size=m, max_size=m)),
        dtype=np.float64,
    )
    widths = np.array(
        draw(st.lists(st.integers(0, 400), min_size=m, max_size=m)), dtype=np.float64
    )
    # make some queries start or end exactly on split keys (boundary straddle)
    if splits:
        lows[0] = float(splits[0])
        if m > 1:
            widths[1] = float(splits[-1]) - lows[1]
            if widths[1] < 0:
                widths[1] = 0.0
    return keys, measures, [float(s) for s in splits], lows, lows + widths


@settings(max_examples=25, deadline=None)
@given(case=fleet_case(), aggregate=st.sampled_from(ALL_AGGREGATES))
def test_fleet_equals_monolithic_oracle(case, aggregate):
    keys, measures, splits, lows, highs = case
    m = None if aggregate is Aggregate.COUNT else measures
    fleet = IndexFleet.build(keys, m, aggregate, delta=25.0, config=FAST, splits=splits)
    mono = PolyFitIndex.build(keys, m, aggregate, delta=25.0, config=FAST)
    exact = mono.exact_batch(lows, highs)
    assert np.array_equal(fleet.exact_batch(lows, highs), exact, equal_nan=True)
    # both guarantee kinds stay certified against the monolithic truth
    relative = fleet.query_batch(lows, highs, Guarantee.relative(0.1))
    assert bool(relative.guaranteed.all())
    _satisfies_relative(relative.values, exact, 0.1)
    absolute = fleet.query_batch(lows, highs, Guarantee.absolute(1e9))
    assert bool(absolute.guaranteed.all())
    nan = np.isnan(exact)
    assert np.all(np.isnan(absolute.values[nan]))
    assert np.all(
        np.abs(absolute.values[~nan] - exact[~nan])
        <= absolute.error_bounds[~nan] + 1e-9
    )


# --------------------------------------------------------------------- #
# NaN merge regression (the empty-clip MAX fix)
# --------------------------------------------------------------------- #


class TestNaNMerge:
    def test_empty_partition_does_not_poison_max(self):
        # keys cluster in [0, 100] and [300, 400]; the middle partition
        # (150, 250] owns no keys, so its partial over any clip is all-NaN
        rng = np.random.default_rng(3)
        keys = np.concatenate(
            [rng.uniform(0, 100, 500), rng.uniform(300, 400, 500)]
        )
        measures = rng.integers(1, 100, 1000).astype(np.float64)
        for aggregate in (Aggregate.MAX, Aggregate.MIN):
            fleet = IndexFleet.build(
                keys, measures, aggregate, delta=25.0, config=FAST,
                splits=[150.0, 250.0],
            )
            assert fleet.partitions[1].is_empty
            mono = PolyFitIndex.build(keys, measures, aggregate, delta=25.0, config=FAST)
            # straddles the empty middle partition: the all-NaN partial must
            # drop out of the fmax/fmin merge, not poison it
            lows = np.array([50.0, 160.0, 120.0])
            highs = np.array([350.0, 240.0, 230.0])
            merged = fleet.exact_batch(lows, highs)
            truth = mono.exact_batch(lows, highs)
            assert np.array_equal(merged, truth, equal_nan=True)
            assert not np.isnan(merged[0])  # straddler has witnesses outside
            assert np.isnan(merged[1])  # fully inside the hole: NaN, like mono
            estimates = fleet.estimate_batch(lows, highs)
            assert not np.isnan(estimates[0])
            # and the certified read path falls back to the exact NaN answer
            result = fleet.query_batch(lows, highs, Guarantee.relative(0.05))
            assert np.isnan(result.values[1]) and result.exact_fallback[1]

    def test_all_empty_fleet_answers_identities(self):
        view = EmptyPartitionView(Aggregate.MAX)
        router = FleetRouter(PartitionMap([10.0]), [view, EmptyPartitionView(Aggregate.MAX)], Aggregate.MAX)
        lows = np.array([0.0, 15.0])
        highs = np.array([20.0, 18.0])
        assert np.all(np.isnan(router.estimate_batch(lows, highs)))
        assert np.all(router.error_bounds_batch(lows, highs) == 0.0)


# --------------------------------------------------------------------- #
# Per-query bounds in resolve_batch_certificates
# --------------------------------------------------------------------- #


class TestPerQueryBounds:
    def test_absolute_guarantee_elementwise(self):
        approx = np.array([100.0, 200.0, 300.0])
        bounds = np.array([10.0, 50.0, 90.0])
        result = resolve_batch_certificates(
            approx,
            error_bound=bounds,
            guarantee=Guarantee.absolute(50.0),
            exact_for_mask=lambda mask: np.zeros(int(mask.sum())),
            absolute_fallback=False,
        )
        assert result.guaranteed.tolist() == [True, True, False]
        assert np.array_equal(result.error_bounds, bounds)

    def test_relative_threshold_per_query(self):
        # same approx value certifies under a small bound, fails a large one
        approx = np.array([150.0, 150.0])
        bounds = np.array([10.0, 100.0])
        calls = []

        def exact_for_mask(mask):
            calls.append(mask.copy())
            return np.full(int(mask.sum()), 140.0)

        result = resolve_batch_certificates(
            approx,
            error_bound=bounds,
            guarantee=Guarantee.relative(0.1),  # threshold = bound * 11
            exact_for_mask=exact_for_mask,
            absolute_fallback=False,
        )
        assert result.exact_fallback.tolist() == [False, True]
        assert result.values.tolist() == [150.0, 140.0]
        assert result.error_bounds.tolist() == [10.0, 0.0]
        assert len(calls) == 1 and calls[0].tolist() == [False, True]

    def test_scalar_bound_unchanged(self):
        approx = np.array([100.0, 200.0])
        result = resolve_batch_certificates(
            approx,
            error_bound=5.0,
            guarantee=None,
            exact_for_mask=lambda mask: np.zeros(int(mask.sum())),
            absolute_fallback=False,
        )
        assert np.all(result.error_bounds == 5.0)
        assert bool(result.guaranteed.all())

    def test_merged_bound_counts_straddled_partitions(self):
        keys, measures = _dataset(n=2000)
        fleet, _ = _build_pair(
            Aggregate.COUNT, keys, measures, splits=[250.0, 500.0, 750.0]
        )
        per_partition = fleet.partitions[0].certified_bound
        snapshot = fleet.snapshot()
        # inside one partition / straddling two / straddling all four
        bounds = snapshot.error_bounds_batch(
            np.array([10.0, 240.0, 10.0]), np.array([20.0, 260.0, 990.0])
        )
        assert bounds.tolist() == [
            per_partition,
            2 * per_partition,
            4 * per_partition,
        ]


# --------------------------------------------------------------------- #
# Writes, rebalancing, epoch pinning
# --------------------------------------------------------------------- #


class TestWritesAndRebalancing:
    def test_insert_routes_by_key(self):
        keys, _ = _dataset(n=1000)
        fleet, _ = _build_pair(Aggregate.COUNT, keys, None, splits=[500.0])
        before = [p.num_keys for p in fleet.partitions]
        inserted = fleet.insert(np.array([100.0, 200.0, 700.0]))
        assert inserted == 3
        assert fleet.partitions[0].buffer_size == 2
        assert fleet.partitions[1].buffer_size == 1
        assert fleet.version == 1
        assert [p.num_keys for p in fleet.partitions] == [before[0] + 2, before[1] + 1]

    def test_insert_matches_monolithic_after_writes(self):
        keys, measures = _dataset(n=1500, seed=5)
        extra_keys, extra_measures = _dataset(n=500, seed=6)
        fleet, _ = _build_pair(Aggregate.SUM, keys, measures, num_partitions=4)
        fleet.insert(extra_keys, extra_measures)
        mono = PolyFitIndex.build(
            np.concatenate([keys, extra_keys]),
            np.concatenate([measures, extra_measures]),
            Aggregate.SUM,
            delta=25.0,
            config=FAST,
        )
        lows, highs = _queries(m=100, seed=9)
        assert np.allclose(
            fleet.exact_batch(lows, highs), mono.exact_batch(lows, highs)
        )
        fleet.compact()
        assert fleet.buffer_size == 0
        assert np.allclose(
            fleet.exact_batch(lows, highs), mono.exact_batch(lows, highs)
        )

    def test_invalid_inserts_rejected_whole(self):
        keys, _ = _dataset(n=500)
        fleet, _ = _build_pair(Aggregate.COUNT, keys, None, splits=[500.0])
        with pytest.raises(DataError):
            fleet.insert(np.array([1.0, np.nan]))
        assert fleet.version == 0 and fleet.buffer_size == 0

    def test_split_and_merge_preserve_answers(self):
        keys, measures = _dataset(n=2000, seed=7)
        for aggregate in (Aggregate.COUNT, Aggregate.MAX):
            fleet, mono = _build_pair(aggregate, keys, measures, num_partitions=2)
            lows, highs = _queries(m=120, seed=8)
            truth = mono.exact_batch(lows, highs)
            split_key = fleet.split(0)
            assert fleet.num_partitions == 3
            assert fleet.partition_map.splits[0] == split_key
            assert np.array_equal(
                fleet.exact_batch(lows, highs), truth, equal_nan=True
            )
            fleet.merge(0)
            assert fleet.num_partitions == 2
            assert np.array_equal(
                fleet.exact_batch(lows, highs), truth, equal_nan=True
            )

    def test_auto_rebalance_splits_oversize_partitions(self):
        keys, _ = _dataset(n=3000, seed=2)
        policy = FleetPolicy(max_keys=500, auto=True)
        fleet = IndexFleet.build(
            keys, None, Aggregate.COUNT, delta=25.0, config=FAST,
            num_partitions=1, policy=policy,
        )
        assert fleet.num_partitions == 1
        fleet.rebalance()
        assert fleet.num_partitions > 1
        assert all(p.num_keys <= 500 for p in fleet.partitions)
        # inserts now rebalance inline
        more, _ = _dataset(n=2000, seed=3)
        count_before = fleet.num_partitions
        fleet.insert(more)
        assert fleet.num_partitions >= count_before
        assert all(p.num_keys <= 500 for p in fleet.partitions)

    def test_merge_policy_collapses_slivers(self):
        keys, _ = _dataset(n=400, seed=4)
        policy = FleetPolicy(max_keys=10_000, merge_keys=500)
        fleet = IndexFleet.build(
            keys, None, Aggregate.COUNT, delta=25.0, config=FAST,
            num_partitions=8, policy=policy,
        )
        assert fleet.num_partitions == 8
        operations = fleet.rebalance()
        assert operations > 0
        assert fleet.num_partitions == 1  # 400 keys all fit one partition

    def test_pinned_snapshot_survives_mutations(self):
        keys, _ = _dataset(n=1200, seed=11)
        fleet, _ = _build_pair(Aggregate.COUNT, keys, None, num_partitions=3)
        lows, highs = _queries(m=50, seed=12)
        pinned = fleet.snapshot()
        frozen = pinned.exact_batch(lows, highs)
        fleet.insert(np.linspace(0.0, 1000.0, 500))
        fleet.compact()
        fleet.split(0)
        # the pinned snapshot still answers its epoch, bit for bit
        assert np.array_equal(pinned.exact_batch(lows, highs), frozen)
        assert pinned.version == 0
        fresh = fleet.snapshot()
        assert fresh.version == fleet.version > 0
        assert not np.array_equal(fresh.exact_batch(lows, highs), frozen)

    def test_split_requires_two_distinct_keys(self):
        fleet = IndexFleet.build(
            np.full(10, 42.0), None, Aggregate.COUNT,
            delta=25.0, config=FAST, num_partitions=1,
        )
        with pytest.raises(DataError):
            fleet.split(0)


# --------------------------------------------------------------------- #
# Sharded fan-out
# --------------------------------------------------------------------- #


class TestShardedRouter:
    def test_thread_sharded_bit_identical_to_serial(self):
        keys, measures = _dataset(n=3000, seed=13)
        serial = IndexFleet.build(
            keys, measures, Aggregate.SUM, delta=25.0, config=FAST, num_partitions=4
        )
        sharded = IndexFleet.build(
            keys, measures, Aggregate.SUM, delta=25.0, config=FAST,
            num_partitions=4, num_shards=2, executor="thread",
        )
        lows, highs = _queries(m=400, seed=14)
        try:
            assert np.array_equal(
                sharded.estimate_batch(lows, highs),
                serial.estimate_batch(lows, highs),
            )
            a = sharded.query_batch(lows, highs, Guarantee.relative(0.05))
            b = serial.query_batch(lows, highs, Guarantee.relative(0.05))
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.guaranteed, b.guaranteed)
        finally:
            sharded.close()
            serial.close()

    def test_router_validates_view_count(self):
        with pytest.raises(DataError):
            FleetRouter(
                PartitionMap([1.0]), [EmptyPartitionView(Aggregate.COUNT)],
                Aggregate.COUNT,
            )


# --------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------- #


class TestPersistence:
    def test_roundtrip_preserves_answers_and_state(self, tmp_path):
        keys, measures = _dataset(n=1500, seed=15)
        fleet, _ = _build_pair(
            Aggregate.SUM, keys, measures,
            splits=[-500.0, 300.0, 700.0],  # first partition empty
            policy=FleetPolicy(max_keys=5000, merge_keys=10),
        )
        fleet.insert(np.array([350.0, 400.0]), np.array([3.0, 4.0]))
        manifest = save_fleet(fleet, tmp_path / "fleet")
        assert manifest.name == "manifest.json"
        assert is_fleet_dir(tmp_path / "fleet")
        loaded = load_fleet(tmp_path / "fleet")
        assert loaded.aggregate is Aggregate.SUM
        assert loaded.partition_map == fleet.partition_map
        assert loaded.policy == fleet.policy
        assert loaded.version == fleet.version
        assert loaded.partitions[0].is_empty
        assert loaded.buffer_size == fleet.buffer_size  # delta log persisted
        lows, highs = _queries(m=80, seed=16)
        assert np.array_equal(
            loaded.exact_batch(lows, highs), fleet.exact_batch(lows, highs)
        )
        assert np.array_equal(
            loaded.estimate_batch(lows, highs), fleet.estimate_batch(lows, highs)
        )

    def test_save_prunes_stale_partition_files(self, tmp_path):
        keys, _ = _dataset(n=600, seed=17)
        fleet, _ = _build_pair(Aggregate.COUNT, keys, None, num_partitions=4)
        save_fleet(fleet, tmp_path / "fleet")
        assert len(list((tmp_path / "fleet").glob("partition-*.pfbin"))) == 4
        while fleet.num_partitions > 2:
            fleet.merge(0)
        save_fleet(fleet, tmp_path / "fleet")
        assert len(list((tmp_path / "fleet").glob("partition-*.pfbin"))) == 2
        assert load_fleet(tmp_path / "fleet").num_partitions == 2

    def test_missing_manifest_raises_typed_error(self, tmp_path):
        with pytest.raises(SerializationError):
            load_fleet(tmp_path)

    def test_malformed_manifest_raises_typed_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(SerializationError):
            load_fleet(tmp_path)

    def test_wrong_version_and_kind_raise(self, tmp_path):
        keys, _ = _dataset(n=300, seed=18)
        fleet, _ = _build_pair(Aggregate.COUNT, keys, None, num_partitions=2)
        manifest = save_fleet(fleet, tmp_path)
        payload = json.loads(manifest.read_text())
        for patch in ({"format_version": 99}, {"kind": "mystery"}):
            manifest.write_text(json.dumps({**payload, **patch}))
            with pytest.raises(SerializationError):
                load_fleet(tmp_path)

    def test_missing_partition_file_raises(self, tmp_path):
        keys, _ = _dataset(n=300, seed=19)
        fleet, _ = _build_pair(Aggregate.COUNT, keys, None, num_partitions=2)
        save_fleet(fleet, tmp_path)
        (tmp_path / "partition-0000.pfbin").unlink()
        with pytest.raises(SerializationError):
            load_fleet(tmp_path)


# --------------------------------------------------------------------- #
# Partition internals
# --------------------------------------------------------------------- #


class TestPartition:
    @pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
    def test_records_roundtrip_through_rebuild(self, aggregate):
        keys, measures = _dataset(n=700, seed=20)
        m = None if aggregate is Aggregate.COUNT else measures
        partition = Partition.from_records(
            keys, m, aggregate, delta=25.0, config=FAST
        )
        partition.insert(keys[:50], None if m is None else measures[:50])
        rec_keys, rec_measures = partition.records()
        rebuilt = Partition.from_records(
            rec_keys, rec_measures, aggregate, delta=25.0, config=FAST
        )
        lows, highs = _queries(m=60, seed=21)
        original = PolyFitIndex.build(
            np.concatenate([keys, keys[:50]]),
            None if m is None else np.concatenate([measures, measures[:50]]),
            aggregate,
            delta=25.0,
            config=FAST,
        )
        truth = original.exact_batch(lows, highs)
        answers = rebuilt.snapshot().exact_batch(lows, highs)
        if aggregate is Aggregate.SUM:
            assert np.allclose(answers, truth, equal_nan=True)
        else:
            assert np.array_equal(answers, truth, equal_nan=True)

    def test_empty_partition_surface(self):
        partition = Partition(Aggregate.MAX, delta=25.0)
        assert partition.is_empty
        assert partition.num_keys == 0
        assert partition.certified_bound == 0.0
        view = partition.snapshot()
        assert np.all(np.isnan(view.estimate_batch(np.array([0.0]), np.array([1.0]))))
        # first insert builds the index in place
        partition.insert(np.array([5.0]), np.array([7.0]))
        assert not partition.is_empty
        assert partition.snapshot().exact_batch(
            np.array([0.0]), np.array([10.0])
        ) == np.array([7.0])


# --------------------------------------------------------------------- #
# Two-key fleet
# --------------------------------------------------------------------- #


class TestFleet2D:
    def test_matches_monolithic_2d(self):
        rng = np.random.default_rng(22)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        fleet = Fleet2D.build(
            xs, ys, delta=25.0, num_partitions=3, grid_resolution=32
        )
        mono = PolyFit2DIndex.build(xs, ys, delta=25.0, grid_resolution=32)
        x_lows = rng.uniform(-10, 90, 50)
        x_highs = x_lows + rng.uniform(0, 60, 50)
        y_lows = rng.uniform(-10, 90, 50)
        y_highs = y_lows + rng.uniform(0, 60, 50)
        exact = mono.exact_batch(x_lows, x_highs, y_lows, y_highs)
        assert np.array_equal(
            fleet.exact_batch(x_lows, x_highs, y_lows, y_highs), exact
        )
        estimates = fleet.estimate_batch(x_lows, x_highs, y_lows, y_highs)
        bounds = fleet.error_bounds_batch(x_lows, x_highs)
        assert np.all(np.abs(estimates - exact) <= bounds + 1e-9)
        result = fleet.query_batch(
            x_lows, x_highs, y_lows, y_highs, Guarantee.relative(0.1)
        )
        assert bool(result.guaranteed.all())
        _satisfies_relative(result.values, exact, 0.1)

    def test_build_validation(self):
        with pytest.raises(QueryError):
            Fleet2D.build(np.array([1.0]), np.array([1.0]))  # no budget
        with pytest.raises(DataError):
            Fleet2D.build(np.array([1.0]), np.array([1.0, 2.0]), delta=10.0)


# --------------------------------------------------------------------- #
# Serving integration
# --------------------------------------------------------------------- #


class TestServeIntegration:
    def test_engine_host_hosts_a_fleet(self):
        from repro.serve import EngineHost

        keys, _ = _dataset(n=1000, seed=23)
        fleet, mono = _build_pair(Aggregate.COUNT, keys, None, num_partitions=4)
        with EngineHost(fleet, name="fleet", cache_size=4) as host:
            assert host.updatable and host.dims == 1
            info = host.info()
            assert info["num_partitions"] == 4
            view = host.pin()
            lows, highs = _queries(m=20, seed=24)
            answer = host.execute(view, (lows, highs), Guarantee.relative(0.1))
            assert np.array_equal(
                answer.values,
                fleet.query_batch(lows, highs, Guarantee.relative(0.1)).values,
            )
            assert host.insert(np.array([500.5])) == 1
            assert host.compact()
            assert host.info()["version"] == fleet.version

    def test_cli_fleet_build_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        fleet_dir = str(tmp_path / "fleet")
        assert main(
            [
                "fleet-build", fleet_dir, "--synthetic", "5000", "--delta", "25",
                "--num-partitions", "3", "--max-keys", "4000",
            ]
        ) == 0
        assert is_fleet_dir(fleet_dir)
        capsys.readouterr()
        assert main(["fleet-stats", fleet_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["num_partitions"] == 3
        assert stats["aggregate"] == "count"
        assert len(stats["partitions"]) == 3

    def test_cli_explicit_splits(self, tmp_path):
        from repro.cli import main

        fleet_dir = str(tmp_path / "fleet")
        assert main(
            [
                "fleet-build", fleet_dir, "--synthetic", "1000", "--delta", "25",
                "--splits", "100,200,300",
            ]
        ) == 0
        assert load_fleet(fleet_dir).partition_map.to_payload() == [100.0, 200.0, 300.0]
