"""Serving-layer failure handling: client retries, deadlines, partial reads.

Client retry logic is tested as pure arithmetic against a
:class:`~repro.testing.faults.FaultClock` (injected ``sleep``/``clock``/
``rng``), so backoff sequences, Retry-After hints and deadline caps are
asserted exactly.  The HTTP tests run a real server: a request whose
``deadline_ms`` cannot be met turns into a 503 that carries a
``Retry-After`` hint, and a query answered around a failed fleet partition
comes back as HTTP 206 with ``partial``/``degraded``/``failed_partitions``
in the payload while the widened bound still contains the truth.
"""

from __future__ import annotations

import asyncio
import json
import random
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import Aggregate, IndexFleet, PolyFitIndex
from repro.config import FitConfig, IndexConfig, SegmentationConfig
from repro.errors import QueryError, ServerOverloadedError
from repro.serve import EngineHost, ServeServer, query_batch_remote, query_remote
from repro.serve import client as client_module
from repro.serve.client import request_json
from repro.testing.faults import FaultClock, FlakyView

FAST = IndexConfig(fit=FitConfig(degree=1), segmentation=SegmentationConfig(delta=25.0))


# --------------------------------------------------------------------- #
# Client retry/backoff (no sockets: _request_once is stubbed)
# --------------------------------------------------------------------- #


class _Script:
    """A scripted transport: raises/returns each entry in order."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, base_url, path, payload, timeout):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


class TestClientRetry:
    def _run(self, monkeypatch, outcomes, **kwargs):
        script = _Script(outcomes)
        clock = FaultClock()
        monkeypatch.setattr(client_module, "_request_once", script)
        result = request_json(
            "http://x", "/query", {},
            sleep=clock.sleep, clock=clock.time, rng=random.Random(0),
            **kwargs,
        )
        return result, script, clock

    def test_retries_503_until_success(self, monkeypatch):
        ok = {"value": 1.0}
        result, script, clock = self._run(
            monkeypatch,
            [ServerOverloadedError("busy"), ServerOverloadedError("busy"), ok],
            retries=3, backoff_s=0.05, max_backoff_s=2.0,
        )
        assert result == ok and script.calls == 3
        assert len(clock.sleeps) == 2
        # Full jitter: the k-th sleep is within (0, backoff * 2**k].
        assert 0.0 <= clock.sleeps[0] <= 0.05
        assert 0.0 <= clock.sleeps[1] <= 0.10

    def test_server_retry_after_hint_wins(self, monkeypatch):
        ok = {"value": 1.0}
        _, _, clock = self._run(
            monkeypatch,
            [ServerOverloadedError("busy", retry_after_s=0.7), ok],
            retries=1,
        )
        assert clock.sleeps == [0.7]

    def test_connection_errors_retry(self, monkeypatch):
        ok = {"status": "ok"}
        result, script, _ = self._run(
            monkeypatch,
            [client_module._ConnectionFailed("cannot reach"), ok],
            retries=1,
        )
        assert result == ok and script.calls == 2

    def test_application_errors_never_retry(self, monkeypatch):
        script = _Script([QueryError("server returned 400: bad bounds")])
        clock = FaultClock()
        monkeypatch.setattr(client_module, "_request_once", script)
        with pytest.raises(QueryError):
            request_json("http://x", "/query", {}, retries=5,
                         sleep=clock.sleep, clock=clock.time)
        assert script.calls == 1 and clock.sleeps == []

    def test_retries_exhausted_reraises(self, monkeypatch):
        with pytest.raises(ServerOverloadedError):
            self._run(
                monkeypatch,
                [ServerOverloadedError("busy")] * 3,
                retries=2,
            )

    def test_deadline_caps_total_time(self, monkeypatch):
        # The hinted sleep would blow the deadline: re-raise instead.
        with pytest.raises(ServerOverloadedError):
            self._run(
                monkeypatch,
                [ServerOverloadedError("busy", retry_after_s=10.0), {"v": 1}],
                retries=5, deadline_s=1.0,
            )

    def test_zero_retries_by_default(self, monkeypatch):
        script = _Script([ServerOverloadedError("busy")])
        monkeypatch.setattr(client_module, "_request_once", script)
        with pytest.raises(ServerOverloadedError):
            request_json("http://x", "/query", {})
        assert script.calls == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(QueryError):
            request_json("http://x", "/query", {}, retries=-1)


# --------------------------------------------------------------------- #
# HTTP integration: deadlines, Retry-After, 206 partial reads
# --------------------------------------------------------------------- #


def _with_server(make_hosts, scenario, **server_kwargs):
    async def run():
        server = ServeServer(make_hosts(), **server_kwargs)
        await server.start(port=0)
        base_url = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, scenario, base_url)
        finally:
            await server.stop()

    return asyncio.run(run())


def _raw_post(base_url, path, payload):
    """POST returning (status, headers, decoded body) without raising."""
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", "Connection": "close"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _degraded_fleet():
    rng = np.random.default_rng(51)
    keys = np.sort(rng.uniform(0.0, 1000.0, size=4000))
    fleet = IndexFleet.build(
        keys, None, Aggregate.COUNT,
        delta=25.0, config=FAST, num_partitions=4, failure_policy="degrade",
    )
    snapshot = fleet.snapshot()  # cached: the host pins this same object
    router = snapshot._router
    flaky = FlakyView(router._views[1])
    router._views[1] = flaky
    router._engines[1] = flaky
    oracle = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                delta=25.0, config=FAST)
    return fleet, oracle


class TestHttpResilience:
    def test_deadline_expiry_is_503_with_retry_after(self):
        keys = np.sort(np.random.default_rng(3).uniform(0.0, 1000.0, 5000))
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                   delta=25.0, config=FAST)

        def scenario(url):
            # A 2s coalescing tick cannot serve a 10ms deadline.
            return _raw_post(url, "/query",
                             {"low": 0.0, "high": 10.0, "deadline_ms": 10})

        status, headers, body = _with_server(
            lambda: EngineHost(index), scenario, max_wait_ms=2000.0
        )
        assert status == 503
        assert "deadline" in body["error"]
        assert body["retry_after_s"] > 0
        assert int(headers["Retry-After"]) >= 1 or headers["Retry-After"] == "0"

    def test_bad_deadline_is_400(self):
        keys = np.sort(np.random.default_rng(3).uniform(0.0, 1000.0, 2000))
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                   delta=25.0, config=FAST)
        status, _, body = _with_server(
            lambda: EngineHost(index),
            lambda url: _raw_post(url, "/query",
                                  {"low": 0.0, "high": 1.0, "deadline_ms": -5}),
        )
        assert status == 400 and "deadline_ms" in body["error"]

    def test_degraded_scalar_query_is_206_partial(self):
        fleet, oracle = _degraded_fleet()

        def scenario(url):
            return _raw_post(url, "/query", {"low": 0.0, "high": 1000.0})

        status, _, body = _with_server(lambda: EngineHost(fleet), scenario)
        assert status == 206
        assert body["partial"] is True
        truth = float(oracle.exact_batch(np.array([0.0]), np.array([1000.0]))[0])
        assert abs(body["value"] - truth) <= body["error_bound"] + 1e-9

    def test_degraded_batch_query_surfaces_flags(self):
        fleet, oracle = _degraded_fleet()
        lows = [0.0, 100.0, 800.0]
        highs = [1000.0, 400.0, 900.0]

        def scenario(url):
            return _raw_post(url, "/query_batch", {"lows": lows, "highs": highs})

        status, _, body = _with_server(lambda: EngineHost(fleet), scenario)
        assert status == 206
        assert body["partial"] is True
        assert body["failed_partitions"] == [1]
        assert any(body["degraded"])
        truth = oracle.exact_batch(np.array(lows), np.array(highs))
        for value, bound, exact in zip(body["values"], body["error_bounds"], truth):
            if bound is not None and np.isfinite(bound):
                assert abs(value - exact) <= bound + 1e-9

    def test_healthy_answers_stay_200_with_partial_false(self):
        keys = np.sort(np.random.default_rng(5).uniform(0.0, 1000.0, 3000))
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                   delta=25.0, config=FAST)

        def scenario(url):
            scalar = _raw_post(url, "/query", {"low": 0.0, "high": 500.0})
            batch = _raw_post(url, "/query_batch",
                              {"lows": [0.0], "highs": [500.0]})
            return scalar, batch

        (s_status, _, s_body), (b_status, _, b_body) = _with_server(
            lambda: EngineHost(index), scenario
        )
        assert s_status == 200 and s_body["partial"] is False
        assert b_status == 200 and b_body["partial"] is False
        assert b_body["failed_partitions"] == []

    def test_client_retry_end_to_end_after_degraded_503(self):
        # Overload path: a server already stopped refuses connections; the
        # retrying client gives up with the typed connection error.
        with pytest.raises(QueryError, match="cannot reach"):
            query_remote("http://127.0.0.1:9", 0.0, 1.0, retries=2, timeout=0.2)

    def test_query_batch_remote_carries_deadline(self):
        keys = np.sort(np.random.default_rng(7).uniform(0.0, 1000.0, 3000))
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                   delta=25.0, config=FAST)
        body = _with_server(
            lambda: EngineHost(index),
            lambda url: query_batch_remote(
                url, [0.0, 10.0], [500.0, 20.0], deadline_ms=30000
            ),
        )
        assert len(body["values"]) == 2 and body["partial"] is False
