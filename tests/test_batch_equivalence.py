"""Property tests: every batch API matches its scalar path.

The scalar per-query implementations are the correctness oracle; the batch
(flat coefficient-matrix) implementations must agree with them to
``np.allclose`` on every aggregate, including empty ranges, NaN MAX/MIN
results, and the relative-guarantee exact-fallback paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Aggregate,
    BatchQueryResult,
    Guarantee,
    PolyFitIndex,
    Polynomial1D,
    PolynomialBank,
    QueryEngine,
    RangeQuery,
    generate_range_queries,
    generate_rectangle_queries,
)
from repro.baselines import (
    AggregateSegmentTree,
    BPlusTree,
    BruteForceAggregator,
    EntropyHistogram,
    EquiWidthHistogram,
    FITingTree,
    KeyCumulativeArray,
    RecursiveModelIndex,
    SampledBTree,
)
from repro.errors import QueryError
from repro.queries import queries_to_bounds

ALL_AGGREGATES = [Aggregate.COUNT, Aggregate.SUM, Aggregate.MAX, Aggregate.MIN]


def _edge_case_ranges(keys: np.ndarray) -> list[tuple[float, float]]:
    """Ranges exercising the corner cases of the snap-to-sample logic."""
    lo, hi = float(keys[0]), float(keys[-1])
    gap = float((keys[10] + keys[11]) / 2.0)  # strictly between two data keys
    return [
        (gap, gap),                  # empty range inside the key span
        (lo - 10.0, lo - 5.0),       # entirely below the data
        (hi + 5.0, hi + 10.0),       # entirely above the data
        (lo, hi),                    # full span
        (lo, lo),                    # single first key
        (hi, hi),                    # single last key
        (lo - 100.0, hi + 100.0),    # overshooting both ends
    ]


@pytest.fixture(scope="module", params=ALL_AGGREGATES, ids=lambda a: a.value)
def aggregate_index(request, small_keys_measures):
    """A small PolyFit index per aggregate, with its workload bounds."""
    keys, measures = small_keys_measures
    aggregate = request.param
    index = PolyFitIndex.build(
        keys,
        None if aggregate is Aggregate.COUNT else measures,
        aggregate=aggregate,
        delta=25.0,
    )
    queries = generate_range_queries(keys, 80, aggregate, seed=31)
    queries += [RangeQuery(low, high, aggregate) for low, high in _edge_case_ranges(keys)]
    return index, queries


class TestPolyFitBatchEquivalence:
    def _bounds(self, queries):
        return queries_to_bounds(queries)

    def test_estimate_batch_matches_scalar(self, aggregate_index):
        index, queries = aggregate_index
        lows, highs = self._bounds(queries)
        scalar = np.array([index.estimate(query) for query in queries])
        batch = index.estimate_batch(lows, highs)
        assert np.allclose(scalar, batch, equal_nan=True)

    def test_exact_batch_matches_scalar(self, aggregate_index):
        index, queries = aggregate_index
        lows, highs = self._bounds(queries)
        scalar = np.array([index.exact(query) for query in queries])
        batch = index.exact_batch(lows, highs)
        assert np.allclose(scalar, batch, equal_nan=True)

    @pytest.mark.parametrize(
        "guarantee",
        [None, Guarantee.absolute(1000.0), Guarantee.absolute(1e-6), Guarantee.relative(0.01)],
        ids=["none", "abs-loose", "abs-tight", "relative"],
    )
    def test_query_batch_matches_scalar(self, aggregate_index, guarantee):
        index, queries = aggregate_index
        lows, highs = self._bounds(queries)
        batch = index.query_batch(lows, highs, guarantee)
        assert isinstance(batch, BatchQueryResult)
        assert len(batch) == len(queries)
        for i, query in enumerate(queries):
            scalar = index.query(query, guarantee)
            assert np.isclose(scalar.value, batch.values[i], equal_nan=True)
            assert scalar.guaranteed == bool(batch.guaranteed[i])
            assert scalar.exact_fallback == bool(batch.exact_fallback[i])

    def test_relative_guarantee_exercises_fallback(self, count_index, tweet_small):
        keys, _ = tweet_small
        index = count_index
        queries = generate_range_queries(keys, 120, Aggregate.COUNT, seed=37)
        lows, highs = queries_to_bounds(queries)
        batch = index.query_batch(lows, highs, Guarantee.relative(0.1))
        # The workload must contain certified *and* fallback queries so both
        # branches of the masked pass are actually tested.
        assert 0 < int(batch.exact_fallback.sum()) < len(queries)
        assert np.all(batch.guaranteed)
        assert np.all(batch.error_bounds[batch.exact_fallback] == 0.0)

    def test_invalid_bounds_rejected(self, count_index):
        with pytest.raises(QueryError):
            count_index.query_batch(np.array([5.0]), np.array([1.0]))
        with pytest.raises(QueryError):
            count_index.estimate_batch(np.array([1.0, 2.0]), np.array([3.0]))


class TestPolyFit2DBatchEquivalence:
    def test_estimate_and_query_batch_match_scalar(self, count2d_index, osm_small):
        xs, ys = osm_small
        queries = generate_rectangle_queries(xs, ys, 60, seed=41)
        x_lows, x_highs, y_lows, y_highs = queries_to_bounds(queries)
        scalar = np.array([count2d_index.estimate(query) for query in queries])
        batch = count2d_index.estimate_batch(x_lows, x_highs, y_lows, y_highs)
        assert np.allclose(scalar, batch)

        guarantee = Guarantee.relative(0.05)
        batch_result = count2d_index.query_batch(x_lows, x_highs, y_lows, y_highs, guarantee)
        for i, query in enumerate(queries):
            result = count2d_index.query(query, guarantee)
            assert np.isclose(result.value, batch_result.values[i])
            assert result.exact_fallback == bool(batch_result.exact_fallback[i])

    def test_exact_batch_matches_scalar(self, count2d_index, osm_small):
        xs, ys = osm_small
        queries = generate_rectangle_queries(xs, ys, 25, seed=43)
        bounds = queries_to_bounds(queries)
        scalar = np.array([count2d_index.exact(query) for query in queries])
        assert np.allclose(scalar, count2d_index.exact_batch(*bounds))


class TestPolynomialBank:
    def test_mixed_degree_bank_matches_scalar_calls(self):
        rng = np.random.default_rng(5)
        polynomials = [
            Polynomial1D(rng.normal(size=degree + 1), shift=rng.normal(), scale=1.0 + rng.uniform())
            for degree in [0, 1, 2, 3, 3, 1]
        ]
        bank = PolynomialBank.from_polynomials(polynomials)
        assert bank.num_polynomials == len(polynomials)
        assert bank.width == 4
        rows = rng.integers(0, len(polynomials), size=64)
        keys = rng.uniform(-10, 10, size=64)
        expected = np.array([polynomials[row](key) for row, key in zip(rows, keys)])
        assert np.allclose(bank.evaluate(rows, keys), expected)

    def test_row_out_of_range_rejected(self):
        bank = PolynomialBank.from_polynomials([Polynomial1D(np.array([1.0, 2.0]))])
        with pytest.raises(QueryError):
            bank.evaluate(np.array([1]), np.array([0.0]))


class TestBaselineBatchEquivalence:
    @pytest.fixture(scope="class")
    def dataset(self, small_keys_measures):
        keys, measures = small_keys_measures
        queries = generate_range_queries(keys, 60, Aggregate.COUNT, seed=53)
        bounds = list(_edge_case_ranges(keys))
        lows = np.array([q.low for q in queries] + [b[0] for b in bounds])
        highs = np.array([q.high for q in queries] + [b[1] for b in bounds])
        return keys, measures, lows, highs

    def test_key_cumulative_array(self, dataset):
        keys, measures, lows, highs = dataset
        kca = KeyCumulativeArray.build(keys, measures, Aggregate.SUM)
        scalar = [kca.range_aggregate(low, high) for low, high in zip(lows, highs)]
        assert np.allclose(scalar, kca.range_aggregate_batch(lows, highs))
        assert np.allclose(
            [kca.evaluate(k) for k in lows], kca.evaluate_batch(lows)
        )

    def test_brute_force(self, dataset):
        keys, measures, lows, highs = dataset
        brute = BruteForceAggregator(keys, measures)
        scalar = [brute.range_aggregate(low, high, Aggregate.SUM) for low, high in zip(lows, highs)]
        assert np.allclose(scalar, brute.range_aggregate_batch(lows, highs, Aggregate.SUM))

    def test_bplus_tree(self, dataset):
        keys, measures, lows, highs = dataset
        tree = BPlusTree.from_sorted(keys, measures)
        scalar = [tree.range_aggregate(low, high, "sum") for low, high in zip(lows, highs)]
        assert np.allclose(scalar, tree.range_aggregate_batch(lows, highs, "sum"))

    @pytest.mark.parametrize("histogram_cls", [EquiWidthHistogram, EntropyHistogram])
    def test_histograms(self, dataset, histogram_cls):
        keys, measures, lows, highs = dataset
        histogram = histogram_cls(keys, measures, num_buckets=32, aggregate=Aggregate.SUM)
        scalar = [histogram.range_estimate(low, high) for low, high in zip(lows, highs)]
        assert np.allclose(scalar, histogram.range_estimate_batch(lows, highs))

    def test_sampled_btree(self, dataset):
        keys, measures, lows, highs = dataset
        stree = SampledBTree(keys, measures, sample_fraction=0.2)
        scalar = [stree.range_estimate(low, high, Aggregate.SUM) for low, high in zip(lows, highs)]
        assert np.allclose(scalar, stree.range_estimate_batch(lows, highs, Aggregate.SUM))

    @pytest.mark.parametrize("aggregate", [Aggregate.MAX, Aggregate.MIN, Aggregate.SUM])
    def test_aggregate_segment_tree(self, dataset, aggregate):
        keys, measures, lows, highs = dataset
        tree = AggregateSegmentTree(keys, measures, aggregate)
        scalar = [tree.range_query(low, high) for low, high in zip(lows, highs)]
        assert np.allclose(scalar, tree.range_query_batch(lows, highs), equal_nan=True)

    @pytest.mark.parametrize(
        "guarantee",
        [None, Guarantee.absolute(1e-6), Guarantee.relative(0.01)],
        ids=["none", "abs-tight", "relative"],
    )
    def test_fiting_tree_query_batch(self, dataset, guarantee):
        keys, _, lows, highs = dataset
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=10.0)
        queries = [RangeQuery(low, high, Aggregate.COUNT) for low, high in zip(lows, highs)]
        batch = tree.query_batch(lows, highs, guarantee)
        for i, query in enumerate(queries):
            scalar = tree.query(query, guarantee)
            assert np.isclose(scalar.value, batch.values[i])
            assert scalar.exact_fallback == bool(batch.exact_fallback[i])

    @pytest.mark.parametrize(
        "guarantee",
        [None, Guarantee.absolute(1e-6), Guarantee.relative(0.01)],
        ids=["none", "abs-tight", "relative"],
    )
    def test_rmi_query_batch(self, dataset, guarantee):
        keys, _, lows, highs = dataset
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 4, 16))
        queries = [RangeQuery(low, high, Aggregate.COUNT) for low, high in zip(lows, highs)]
        batch = rmi.query_batch(lows, highs, guarantee)
        for i, query in enumerate(queries):
            scalar = rmi.query(query, guarantee)
            assert np.isclose(scalar.value, batch.values[i])
            assert scalar.exact_fallback == bool(batch.exact_fallback[i])

    def test_inverted_ranges_rejected_like_scalar(self, dataset):
        # The scalar paths raise on high < low (via RangeQuery validation);
        # the batch entry points must do the same instead of silently
        # returning negative "counts".
        keys, _, _, _ = dataset
        fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=10.0)
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 4, 16))
        bad_lows, bad_highs = np.array([900.0]), np.array([100.0])
        for method in (
            fiting.estimate_batch,
            fiting.query_batch,
            rmi.estimate_batch,
            rmi.query_batch,
        ):
            with pytest.raises(QueryError):
                method(bad_lows, bad_highs)

    def test_rmi_mlp_stage_falls_back_to_loop(self, dataset):
        from repro.baselines.rmi import TinyMLP

        keys, _, lows, highs = dataset
        rmi = RecursiveModelIndex.build(
            keys,
            stage_sizes=(1, 2),
            model_factory=lambda: TinyMLP(hidden_layers=(4,), epochs=20),
        )
        scalar = [rmi.predict_cumulative(float(k)) for k in lows[:10]]
        assert np.allclose(scalar, rmi.predict_cumulative_batch(lows[:10]))


class TestQueryEngineBatchPath:
    def test_for_index_prefers_batch_and_matches_scalar(self, count_index, tweet_small):
        keys, _ = tweet_small
        with QueryEngine.for_index(count_index, name="PolyFit-2") as engine:
            assert engine.supports_batch
            queries = generate_range_queries(keys, 50, Aggregate.COUNT, seed=61)
            guarantee = Guarantee.relative(0.01)
            batch_pairs = engine.run(queries, guarantee)
            scalar_pairs = engine.run(queries, guarantee, prefer_batch=False)
        for (batch_result, batch_exact), (scalar_result, scalar_exact) in zip(
            batch_pairs, scalar_pairs
        ):
            assert np.isclose(batch_result.value, scalar_result.value)
            assert batch_result.exact_fallback == scalar_result.exact_fallback
            assert np.isclose(batch_exact, scalar_exact)

    def test_accuracy_identical_between_paths(self, count_index, tweet_small):
        keys, _ = tweet_small
        queries = generate_range_queries(keys, 50, Aggregate.COUNT, seed=62)
        with QueryEngine.for_index(count_index) as engine:
            batch_report = engine.accuracy(queries, Guarantee.absolute(100.0))
        scalar_report = QueryEngine(count_index.query, count_index.exact).accuracy(
            queries, Guarantee.absolute(100.0)
        )
        assert batch_report.mean_absolute_error == pytest.approx(
            scalar_report.mean_absolute_error
        )
        assert batch_report.guarantee_violations == scalar_report.guarantee_violations

    def test_run_batch_raw_returns_columnar_result(self, count_index, tweet_small):
        keys, _ = tweet_small
        engine = QueryEngine.for_index(count_index)
        queries = generate_range_queries(keys, 20, Aggregate.COUNT, seed=63)
        raw = engine.run_batch_raw(queries)
        assert isinstance(raw, BatchQueryResult)
        assert len(raw) == 20

    def test_batch_path_rejects_aggregate_mismatch(self, count_index, tweet_small):
        # The scalar path raises on a wrong-aggregate query; the batch path
        # (which only ships bounds) must enforce the same check instead of
        # silently answering with the index's own aggregate.
        from repro.errors import NotSupportedError

        keys, _ = tweet_small
        engine = QueryEngine.for_index(count_index)
        wrong = generate_range_queries(keys, 5, Aggregate.SUM, seed=66)
        with pytest.raises(NotSupportedError):
            engine.run(wrong)

    def test_batch_result_equality_does_not_raise(self, count_index):
        # frozen dataclass with ndarray fields: the generated __eq__ would
        # raise "truth value of an array is ambiguous"; eq=False keeps
        # identity semantics instead.
        result = count_index.query_batch(np.array([0.0, 10.0]), np.array([5.0, 20.0]))
        other = count_index.query_batch(np.array([0.0, 10.0]), np.array([5.0, 20.0]))
        assert result == result
        assert result != other

    def test_queries_to_bounds_rejects_mixed_workloads(self, tweet_small, osm_small):
        keys, _ = tweet_small
        xs, ys = osm_small
        one_key = generate_range_queries(keys, 2, Aggregate.COUNT, seed=64)
        two_key = generate_rectangle_queries(xs, ys, 2, seed=65)
        with pytest.raises(QueryError):
            queries_to_bounds(one_key + two_key)
