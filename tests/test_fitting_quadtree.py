"""Tests for the quadtree surface segmentation (Section VI)."""

import numpy as np
import pytest

from repro.config import QuadTreeConfig
from repro.errors import SegmentationError
from repro.fitting import build_quadtree_surface
from repro.functions import build_cumulative_2d


def _sample_grid(n_points: int = 3000, resolution: int = 32, seed: int = 0):
    rng = np.random.default_rng(seed)
    xs = rng.normal(0, 3, size=n_points)
    ys = rng.normal(0, 3, size=n_points)
    cf = build_cumulative_2d(xs, ys)
    return cf.sample_grid(resolution=resolution)


class TestBuildQuadtree:
    def test_leaves_satisfy_budget_or_are_exact(self):
        grid_x, grid_y, grid_cf = _sample_grid()
        config = QuadTreeConfig(delta=50.0, max_depth=8, degree=2)
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, config)
        for leaf in root.leaves():
            assert leaf.is_exact or leaf.max_error <= config.delta + 1e-9

    def test_smaller_delta_more_leaves(self):
        grid_x, grid_y, grid_cf = _sample_grid()
        loose = build_quadtree_surface(grid_x, grid_y, grid_cf, QuadTreeConfig(delta=200.0))
        tight = build_quadtree_surface(grid_x, grid_y, grid_cf, QuadTreeConfig(delta=20.0))
        assert len(tight.leaves()) >= len(loose.leaves())

    def test_locate_finds_containing_leaf(self):
        grid_x, grid_y, grid_cf = _sample_grid()
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, QuadTreeConfig(delta=50.0))
        rng = np.random.default_rng(1)
        for _ in range(30):
            u = rng.uniform(grid_x[0], grid_x[-1])
            v = rng.uniform(grid_y[0], grid_y[-1])
            leaf = root.locate(u, v)
            assert leaf.is_leaf
            assert leaf.x_low - 1e-9 <= u <= leaf.x_high + 1e-9
            assert leaf.y_low - 1e-9 <= v <= leaf.y_high + 1e-9

    def test_leaf_evaluation_close_to_grid_truth(self):
        grid_x, grid_y, grid_cf = _sample_grid(resolution=24)
        delta = 60.0
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, QuadTreeConfig(delta=delta))
        # At the grid sample points the fitted/exact leaf value must be within delta.
        for i in range(0, grid_x.size, 5):
            for j in range(0, grid_y.size, 5):
                leaf = root.locate(grid_x[i], grid_y[j])
                approx = leaf.evaluate(grid_x[i], grid_y[j])
                assert abs(approx - grid_cf[i, j]) <= delta + 1e-6

    def test_depth_limit_respected(self):
        grid_x, grid_y, grid_cf = _sample_grid()
        config = QuadTreeConfig(delta=0.001, max_depth=3)
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, config)
        assert max(leaf.depth for leaf in root.leaves()) <= 3

    def test_exact_leaf_below_min_cell_points(self):
        grid_x, grid_y, grid_cf = _sample_grid(resolution=8)
        config = QuadTreeConfig(delta=0.001, max_depth=6, min_cell_points=100)
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, config)
        # With the whole 8x8 grid (64 points) below min_cell_points, the root
        # is a single exact leaf.
        assert root.is_leaf and root.is_exact

    def test_num_parameters_positive(self):
        grid_x, grid_y, grid_cf = _sample_grid()
        root = build_quadtree_surface(grid_x, grid_y, grid_cf, QuadTreeConfig(delta=100.0))
        assert root.num_parameters > 0

    def test_shape_validation(self):
        with pytest.raises(SegmentationError):
            build_quadtree_surface(
                np.array([0.0, 1.0]), np.array([0.0, 1.0]), np.zeros((3, 2)), QuadTreeConfig()
            )

    def test_too_small_grid_rejected(self):
        with pytest.raises(SegmentationError):
            build_quadtree_surface(
                np.array([0.0]), np.array([0.0]), np.zeros((1, 1)), QuadTreeConfig()
            )
