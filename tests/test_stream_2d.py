"""Tests for the two-key streaming variant and the 2-D MAX/MIN payload."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Aggregate,
    CompactionPolicy,
    Guarantee,
    PolyFit2DIndex,
    RangeQuery2D,
    UpdatablePolyFit2DIndex,
)
from repro.errors import DataError, QueryError


def _rects(rng, n, span=(0.0, 10.0)):
    a = rng.uniform(span[0] - 1, span[1] + 1, (2, n))
    b = rng.uniform(span[0] - 1, span[1] + 1, (2, n))
    return (
        np.minimum(a[0], a[1]),
        np.maximum(a[0], a[1]),
        np.minimum(b[0], b[1]),
        np.maximum(b[0], b[1]),
    )


def _count_oracle(xs, ys, bounds):
    x_lows, x_highs, y_lows, y_highs = bounds
    return np.array(
        [
            float(np.count_nonzero((xs >= xl) & (xs <= xh) & (ys >= yl) & (ys <= yh)))
            for xl, xh, yl, yh in zip(x_lows, x_highs, y_lows, y_highs)
        ]
    )


@pytest.fixture(scope="module")
def point_cloud():
    rng = np.random.default_rng(101)
    return rng.uniform(0, 10, 2500), rng.uniform(0, 10, 2500)


class TestUpdatable2D:
    def test_buffered_queries_match_oracle(self, point_cloud):
        xs, ys = point_cloud
        rng = np.random.default_rng(1)
        index = UpdatablePolyFit2DIndex.build(
            xs, ys, delta=40.0, grid_resolution=48,
            policy=CompactionPolicy(auto=False),
        )
        new_x = rng.uniform(0, 10, 600)
        new_y = rng.uniform(0, 10, 600)
        index.insert(new_x, new_y)
        assert index.buffer_size == 600
        all_x = np.concatenate([xs, new_x])
        all_y = np.concatenate([ys, new_y])
        bounds = _rects(rng, 150)
        oracle = _count_oracle(all_x, all_y, bounds)
        assert np.array_equal(index.exact_batch(*bounds), oracle)
        errors = np.abs(index.estimate_batch(*bounds) - oracle)
        assert np.all(errors <= index.certified_bound + 1e-9)

    def test_compaction_is_bit_identical_to_rebuild(self, point_cloud):
        xs, ys = point_cloud
        rng = np.random.default_rng(2)
        index = UpdatablePolyFit2DIndex.build(
            xs, ys, delta=40.0, grid_resolution=48,
            policy=CompactionPolicy(auto=False),
        )
        new_x = rng.uniform(0, 10, 500)
        new_y = rng.uniform(0, 10, 500)
        index.insert(new_x, new_y)
        assert index.compact()
        assert index.epoch == 1 and index.buffer_size == 0
        scratch = PolyFit2DIndex.build(
            np.concatenate([xs, new_x]), np.concatenate([ys, new_y]),
            delta=40.0, grid_resolution=48,
        )
        bounds = _rects(rng, 200)
        assert np.array_equal(
            index.estimate_batch(*bounds), scratch.estimate_batch(*bounds)
        )

    def test_sum_requires_measures_and_rejects_negative(self, point_cloud):
        xs, ys = point_cloud
        weights = np.random.default_rng(3).uniform(0.5, 2.0, xs.size)
        index = UpdatablePolyFit2DIndex.build(
            xs, ys, measures=weights, aggregate=Aggregate.SUM, delta=60.0,
            grid_resolution=32, policy=CompactionPolicy(auto=False),
        )
        with pytest.raises(DataError):
            index.insert([1.0], [1.0])
        with pytest.raises(DataError):
            index.insert([1.0], [1.0], measures=[-1.0])
        index.insert([1.0], [1.0], measures=[2.5])
        before = index.exact(RangeQuery2D(0, 10, 0, 10, Aggregate.SUM))
        assert before == pytest.approx(weights.sum() + 2.5)

    def test_guarantee_path(self, point_cloud):
        xs, ys = point_cloud
        rng = np.random.default_rng(4)
        index = UpdatablePolyFit2DIndex.build(
            xs, ys, delta=40.0, grid_resolution=48,
            policy=CompactionPolicy(auto=False),
        )
        index.insert(rng.uniform(0, 10, 200), rng.uniform(0, 10, 200))
        bounds = _rects(rng, 80)
        result = index.query_batch(*bounds, Guarantee.relative(0.05))
        exact = index.exact_batch(*bounds)
        assert np.all(result.guaranteed)
        relative = np.abs(result.values - exact) / np.maximum(np.abs(exact), 1e-12)
        assert np.all(relative[exact != 0] <= 0.05 + 1e-9)

    def test_auto_compaction(self, point_cloud):
        xs, ys = point_cloud
        rng = np.random.default_rng(5)
        index = UpdatablePolyFit2DIndex.build(
            xs, ys, delta=40.0, grid_resolution=32,
            policy=CompactionPolicy(max_buffer=100, auto=True),
        )
        index.insert(rng.uniform(0, 10, 99), rng.uniform(0, 10, 99))
        assert index.epoch == 0
        index.insert(rng.uniform(0, 10, 1), rng.uniform(0, 10, 1))
        assert index.epoch == 1 and index.buffer_size == 0


class TestQuadLeafExtremes:
    @pytest.fixture(scope="class")
    def directory_with_points(self):
        rng = np.random.default_rng(110)
        xs = rng.uniform(0, 10, 2000)
        ys = rng.uniform(0, 10, 2000)
        measures = rng.normal(0, 5, 2000)
        index = PolyFit2DIndex.build(xs, ys, delta=40.0, grid_resolution=48)
        return index.directory, xs, ys, measures

    @pytest.mark.parametrize("aggregate", [Aggregate.MAX, Aggregate.MIN])
    def test_matches_brute_force(self, directory_with_points, aggregate):
        directory, xs, ys, measures = directory_with_points
        directory.point_extremes = None
        directory.attach_extremes(xs, ys, measures, aggregate)
        reduce = np.max if aggregate is Aggregate.MAX else np.min
        rng = np.random.default_rng(111)
        bounds = _rects(rng, 300)
        got = directory.range_extreme_batch(*bounds)
        for i, (xl, xh, yl, yh) in enumerate(zip(*bounds)):
            mask = (xs >= xl) & (xs <= xh) & (ys >= yl) & (ys <= yh)
            if not mask.any():
                assert np.isnan(got[i])
            else:
                assert got[i] == float(reduce(measures[mask]))

    def test_empty_rectangle_is_nan(self, directory_with_points):
        directory, xs, ys, measures = directory_with_points
        directory.point_extremes = None
        directory.attach_extremes(xs, ys, measures, Aggregate.MAX)
        assert np.isnan(directory.range_extreme(11.0, 12.0, 11.0, 12.0))

    def test_guards(self, directory_with_points):
        directory, xs, ys, measures = directory_with_points
        directory.point_extremes = None
        with pytest.raises(QueryError):
            directory.range_extreme(0, 1, 0, 1)  # payload not attached
        with pytest.raises(QueryError):
            directory.attach_extremes(xs, ys, measures, Aggregate.COUNT)
        directory.attach_extremes(xs, ys, measures, Aggregate.MAX)
        with pytest.raises(QueryError):
            directory.attach_extremes(xs, ys, measures, Aggregate.MIN)
        with pytest.raises(QueryError):
            directory.range_extreme(1.0, 0.0, 0.0, 1.0)  # inverted bounds
        # Idempotent for the same aggregate.
        payload = directory.attach_extremes(xs, ys, measures, Aggregate.MAX)
        assert payload is directory.point_extremes
