"""Tests for index serialization (JSON round-tripping)."""

import json

import numpy as np
import pytest

from repro import (
    Aggregate,
    Guarantee,
    PolyFitIndex,
    RangeQuery,
    generate_range_queries,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)
from repro.errors import SerializationError


class TestDictRoundTrip:
    def test_count_index_round_trip(self, count_index, tweet_small):
        keys, _ = tweet_small
        payload = index_to_dict(count_index)
        clone = index_from_dict(payload)
        assert clone.num_segments == count_index.num_segments
        assert clone.delta == count_index.delta
        queries = generate_range_queries(keys, 30, Aggregate.COUNT, seed=1)
        for query in queries:
            assert clone.query_value(query.low, query.high) == pytest.approx(
                count_index.query_value(query.low, query.high)
            )

    def test_max_index_round_trip(self, max_index, hki_small):
        keys, _ = hki_small
        clone = index_from_dict(index_to_dict(max_index))
        queries = generate_range_queries(keys, 30, Aggregate.MAX, seed=2)
        for query in queries:
            original = max_index.query(query).value
            restored = clone.query(query).value
            if np.isnan(original) and np.isnan(restored):
                continue
            assert restored == pytest.approx(original)

    def test_payload_is_json_serializable(self, count_index):
        payload = index_to_dict(count_index)
        text = json.dumps(payload)
        assert isinstance(json.loads(text), dict)

    def test_guarantees_preserved_after_round_trip(self, count_index, tweet_small):
        keys, _ = tweet_small
        clone = index_from_dict(index_to_dict(count_index))
        queries = generate_range_queries(keys, 30, Aggregate.COUNT, seed=3)
        for query in queries:
            result = clone.query(query, Guarantee.absolute(100.0))
            exact = clone.exact(query)
            assert abs(result.value - exact) <= 100.0 + 1e-6

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            index_from_dict({"format_version": 1})

    def test_wrong_version_rejected(self, count_index):
        payload = index_to_dict(count_index)
        payload["format_version"] = 999
        with pytest.raises(SerializationError):
            index_from_dict(payload)


class TestFileRoundTrip:
    def test_save_and_load(self, count_index, tmp_path, tweet_small):
        keys, _ = tweet_small
        path = tmp_path / "index.json"
        save_index(count_index, path)
        restored = load_index(path)
        assert restored.num_segments == count_index.num_segments
        query = RangeQuery(float(keys[100]), float(keys[-100]), Aggregate.COUNT)
        assert restored.query_value(query.low, query.high) == pytest.approx(
            count_index.query_value(query.low, query.high)
        )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_index(tmp_path / "missing.json")

    def test_load_corrupted_file(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_index(path)

    def test_serialized_sum_index(self, tweet_small, tmp_path):
        keys, measures = tweet_small
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.SUM, delta=100.0)
        path = tmp_path / "sum.json"
        save_index(index, path)
        clone = load_index(path)
        assert clone.aggregate is Aggregate.SUM
        query = RangeQuery(float(keys[10]), float(keys[-10]), Aggregate.SUM)
        assert clone.query_value(query.low, query.high) == pytest.approx(
            index.query_value(query.low, query.high)
        )
