"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.errors import DataError


class TestStockIndexWalk:
    def test_shapes_and_monotone_keys(self):
        keys, values = synthetic.stock_index_walk(n=2000, seed=1)
        assert keys.shape == values.shape == (2000,)
        assert np.all(np.diff(keys) > 0)

    def test_positive_measures(self):
        _, values = synthetic.stock_index_walk(n=1000, seed=2)
        assert np.all(values > 0)

    def test_reproducible_with_seed(self):
        a = synthetic.stock_index_walk(n=500, seed=42)
        b = synthetic.stock_index_walk(n=500, seed=42)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = synthetic.stock_index_walk(n=500, seed=1)
        b = synthetic.stock_index_walk(n=500, seed=2)
        assert not np.array_equal(a[1], b[1])

    def test_rejects_nonpositive_size(self):
        with pytest.raises(DataError):
            synthetic.stock_index_walk(n=0)

    def test_values_near_start_level(self):
        _, values = synthetic.stock_index_walk(n=5000, seed=3, start_value=28000.0)
        assert 20000 < values.mean() < 36000


class TestTweetLatitudes:
    def test_keys_strictly_increasing(self):
        keys, _ = synthetic.tweet_latitudes(n=3000, seed=4)
        assert np.all(np.diff(keys) > 0)

    def test_latitude_range(self):
        keys, _ = synthetic.tweet_latitudes(n=3000, seed=5)
        assert keys.min() >= -90.0
        assert keys.max() <= 90.0

    def test_unit_measures_option(self):
        _, measures = synthetic.tweet_latitudes(n=100, seed=6, with_counts=False)
        assert np.all(measures == 1.0)

    def test_count_measures_positive_integers(self):
        _, measures = synthetic.tweet_latitudes(n=100, seed=7)
        assert np.all(measures >= 1)
        assert np.all(measures == np.round(measures))

    def test_multi_modal_density(self):
        keys, _ = synthetic.tweet_latitudes(n=20000, seed=8)
        # Northern-hemisphere population bands should dominate.
        northern = np.count_nonzero(keys > 0)
        assert northern > 0.6 * keys.size

    def test_rejects_nonpositive_size(self):
        with pytest.raises(DataError):
            synthetic.tweet_latitudes(n=-5)


class TestOsmPoints:
    def test_shapes(self):
        xs, ys = synthetic.osm_points(n=4000, seed=9)
        assert xs.shape == ys.shape == (4000,)

    def test_within_bounds(self):
        xs, ys = synthetic.osm_points(n=4000, seed=10)
        assert xs.min() >= -180.0 and xs.max() <= 180.0
        assert ys.min() >= -85.0 and ys.max() <= 85.0

    def test_clustered_not_uniform(self):
        xs, _ = synthetic.osm_points(n=20000, seed=11)
        histogram, _ = np.histogram(xs, bins=20)
        # Clustered data should be much more uneven than a uniform sample.
        assert histogram.max() > 3 * histogram.min() + 1

    def test_rejects_bad_cluster_count(self):
        with pytest.raises(DataError):
            synthetic.osm_points(n=100, clusters=0)

    def test_reproducible(self):
        a = synthetic.osm_points(n=300, seed=12)
        b = synthetic.osm_points(n=300, seed=12)
        np.testing.assert_array_equal(a[0], b[0])


class TestUniformAndZipfKeys:
    def test_uniform_keys_sorted_in_range(self):
        keys = synthetic.uniform_keys(1000, low=10.0, high=20.0, seed=1)
        assert np.all(np.diff(keys) > 0)
        assert keys.min() >= 10.0 and keys.max() <= 20.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(DataError):
            synthetic.uniform_keys(10, low=5.0, high=5.0)

    def test_zipf_keys_skewed(self):
        keys = synthetic.zipf_keys(5000, alpha=1.5, seed=2)
        assert np.all(np.diff(keys) >= 0)
        # Zipf mass concentrates near small values.
        assert np.median(keys) < keys.mean()

    def test_zipf_rejects_alpha_at_most_one(self):
        with pytest.raises(DataError):
            synthetic.zipf_keys(100, alpha=1.0)


class TestPiecewiseSmoothMeasures:
    def test_matches_key_length_and_positive(self):
        keys = synthetic.uniform_keys(500, seed=3)
        measures = synthetic.piecewise_smooth_measures(keys, pieces=4, seed=4)
        assert measures.shape == keys.shape
        assert np.all(measures > 0)

    def test_rejects_empty_keys(self):
        with pytest.raises(DataError):
            synthetic.piecewise_smooth_measures(np.array([]))

    def test_rejects_bad_pieces(self):
        keys = synthetic.uniform_keys(100, seed=5)
        with pytest.raises(DataError):
            synthetic.piecewise_smooth_measures(keys, pieces=0)


class TestMakeStrictlyIncreasing:
    def test_duplicates_are_spread(self):
        keys = np.array([1.0, 1.0, 1.0, 2.0])
        fixed = synthetic._make_strictly_increasing(keys)
        assert np.all(np.diff(fixed) > 0)

    def test_already_increasing_untouched(self):
        keys = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(synthetic._make_strictly_increasing(keys), keys)
