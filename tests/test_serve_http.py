"""HTTP front-end and CLI tests for the serving layer.

Each test runs a real ``ServeServer`` on an ephemeral port inside
``asyncio.run``; the blocking urllib client helpers run on executor
threads so the loop stays free to serve them.
"""

import asyncio

import numpy as np
import pytest

from repro import Aggregate, CompactionPolicy, Guarantee, PolyFitIndex, UpdatablePolyFitIndex
from repro.cli import build_parser, build_serve_server, main
from repro.errors import QueryError
from repro.serve import (
    EngineHost,
    ServeServer,
    health_remote,
    query_batch_remote,
    query_remote,
    request_json,
    stats_remote,
)

DELTA = 50.0


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(40)
    return np.sort(rng.uniform(0.0, 1000.0, size=20_000))


@pytest.fixture(scope="module")
def index(keys):
    return PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA)


def with_server(make_hosts, scenario, **server_kwargs):
    """Run ``scenario(base_url)`` on a worker thread against a live server."""

    async def run():
        server = ServeServer(make_hosts(), **server_kwargs)
        await server.start(port=0)
        base_url = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, scenario, base_url)
        finally:
            await server.stop()

    return asyncio.run(run())


class TestEndpoints:
    def test_healthz(self, index):
        payload = with_server(
            lambda: EngineHost(index), lambda url: health_remote(url)
        )
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0
        host_health = payload["hosts"]["default"]
        assert host_health == {"epoch": 0, "version": 0}

    def test_healthz_updatable_reports_buffer_and_wal_lag(self, keys, tmp_path):
        def make_host():
            index = UpdatablePolyFitIndex.build(
                keys[:2000],
                aggregate=Aggregate.COUNT,
                delta=DELTA,
                wal_path=tmp_path / "health.wal",
            )
            index.insert(np.array([1.5, 2.5]))
            index.insert(np.array([3.5]))
            return EngineHost(index, name="live")

        payload = with_server(make_host, lambda url: health_remote(url))
        host_health = payload["hosts"]["live"]
        assert host_health["buffer_size"] == 3
        # WAL lag counts *records* (appends) since the last seal, not rows.
        assert host_health["wal_lag"] == 2
        assert host_health["epoch"] == 0
        assert host_health["version"] == 2

    def test_query_matches_direct_batch(self, index):
        direct = index.query_batch(np.array([100.0]), np.array([600.0]))

        payload = with_server(
            lambda: EngineHost(index),
            lambda url: query_remote(url, 100.0, 600.0),
        )
        assert payload["value"] == direct.values[0]
        assert payload["guaranteed"] is bool(direct.guaranteed[0])
        assert payload["exact_fallback"] is bool(direct.exact_fallback[0])
        assert payload["error_bound"] == direct.error_bounds[0]
        assert payload["batch_size"] >= 1

    def test_query_with_guarantee(self, index):
        guarantee = Guarantee.relative(0.05)
        direct = index.query_batch(
            np.array([100.0]), np.array([600.0]), guarantee
        )
        payload = with_server(
            lambda: EngineHost(index),
            lambda url: query_remote(url, 100.0, 600.0, guarantee=guarantee),
        )
        assert payload["value"] == direct.values[0]
        assert payload["guaranteed"] is True

    def test_query_batch_matches_direct(self, index):
        rng = np.random.default_rng(41)
        lows = rng.uniform(0, 500, size=64)
        highs = lows + rng.uniform(10, 400, size=64)
        direct = index.query_batch(lows, highs)
        payload = with_server(
            lambda: EngineHost(index),
            lambda url: query_batch_remote(url, lows, highs),
        )
        assert payload["values"] == direct.values.tolist()
        assert payload["guaranteed"] == direct.guaranteed.tolist()
        assert payload["exact_fallback"] == direct.exact_fallback.tolist()
        expected_bounds = [
            None if np.isnan(b) else float(b) for b in direct.error_bounds
        ]
        assert payload["error_bounds"] == expected_bounds

    def test_stats_exposes_coalescer_and_cache(self, index):
        def scenario(url):
            lows, highs = [10.0, 20.0], [600.0, 700.0]
            query_batch_remote(url, lows, highs)
            query_batch_remote(url, lows, highs)  # second hits the cache
            query_remote(url, 10.0, 600.0)
            return stats_remote(url)

        stats = with_server(
            lambda: EngineHost(index, cache_size=8), scenario
        )
        assert stats["requests_served"] >= 3
        assert stats["coalescer"]["served"] == 1
        assert stats["coalescer"]["batches"] == 1
        cache = stats["hosts"]["default"]["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] >= 1
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert stats["hosts"]["default"]["aggregate"] == "count"
        assert stats["uptime_s"] >= 0.0

    def test_multiple_named_hosts(self, index, keys):
        sums = PolyFitIndex.build(
            keys, np.ones_like(keys), aggregate=Aggregate.SUM, delta=DELTA
        )

        def scenario(url):
            counted = query_remote(url, 100.0, 900.0, index="counts")
            summed = query_remote(url, 100.0, 900.0, index="sums")
            return counted, summed

        counted, summed = with_server(
            lambda: {"counts": EngineHost(index, name="counts"),
                     "sums": EngineHost(sums, name="sums")},
            scenario,
        )
        assert counted["value"] == index.query_batch(
            np.array([100.0]), np.array([900.0])
        ).values[0]
        assert summed["value"] == sums.query_batch(
            np.array([100.0]), np.array([900.0])
        ).values[0]


class TestWritePath:
    @staticmethod
    def make_updatable(keys):
        return EngineHost(
            UpdatablePolyFitIndex.build(
                keys,
                aggregate=Aggregate.COUNT,
                delta=DELTA,
                policy=CompactionPolicy(auto=False),
            )
        )

    def test_insert_then_query_then_compact(self, keys):
        exact = Guarantee.relative(1e-9)  # forces exact fallback answers

        def scenario(url):
            before = query_remote(url, 400.0, 600.0, guarantee=exact)
            inserted = request_json(url, "/insert", {"keys": [500.0] * 5})
            after = query_remote(url, 400.0, 600.0, guarantee=exact)
            compacted = request_json(url, "/compact", {})
            settled = query_remote(url, 400.0, 600.0, guarantee=exact)
            return before, inserted, after, compacted, settled

        before, inserted, after, compacted, settled = with_server(
            lambda: self.make_updatable(keys), scenario
        )
        assert inserted["inserted"] == 5
        assert inserted["buffer_size"] == 5
        assert after["value"] == before["value"] + 5.0
        assert after["version"] > before["version"]
        assert compacted["compacted"] is True
        assert compacted["epoch"] == before["epoch"] + 1
        assert settled["value"] == after["value"]
        assert settled["epoch"] == compacted["epoch"]

    def test_writes_rejected_on_immutable_host(self, index):
        def scenario(url):
            with pytest.raises(QueryError) as insert_error:
                request_json(url, "/insert", {"keys": [1.0]})
            with pytest.raises(QueryError) as compact_error:
                request_json(url, "/compact", {})
            return str(insert_error.value), str(compact_error.value)

        insert_message, compact_message = with_server(
            lambda: EngineHost(index), scenario
        )
        assert "400" in insert_message and "immutable" in insert_message
        assert "400" in compact_message and "immutable" in compact_message


class TestErrorMapping:
    def test_unknown_route_is_404(self, index):
        def scenario(url):
            with pytest.raises(QueryError) as error:
                request_json(url, "/nope", {})
            return str(error.value)

        message = with_server(lambda: EngineHost(index), scenario)
        assert "404" in message

    def test_unknown_index_is_404(self, index):
        def scenario(url):
            with pytest.raises(QueryError) as error:
                query_remote(url, 1.0, 2.0, index="missing")
            return str(error.value)

        message = with_server(lambda: EngineHost(index), scenario)
        assert "404" in message and "unknown index" in message

    def test_bad_json_is_400(self, index):
        import urllib.error
        import urllib.request

        def scenario(url):
            request = urllib.request.Request(
                url + "/query",
                data=b"this is not json",
                headers={"Content-Type": "application/json",
                         "Connection": "close"},
                method="POST",
            )
            try:
                urllib.request.urlopen(request, timeout=10.0)
            except urllib.error.HTTPError as error:
                return error.code
            return None

        assert with_server(lambda: EngineHost(index), scenario) == 400

    def test_malformed_requests_are_400(self, index):
        def scenario(url):
            codes = []
            for payload in (
                {"low": 10.0},  # missing high
                {"low": 10.0, "high": 5.0},  # inverted
                {"low": "x", "high": "y"},  # non-numeric
                {"low": 1.0, "high": 2.0,
                 "guarantee": {"kind": "weird", "epsilon": 1.0}},
            ):
                with pytest.raises(QueryError) as error:
                    request_json(url, "/query", payload)
                codes.append("400" in str(error.value))
            with pytest.raises(QueryError) as error:
                request_json(url, "/query_batch", {"lows": [1.0], "highs": []})
            codes.append("400" in str(error.value))
            return codes

        assert all(with_server(lambda: EngineHost(index), scenario))


class TestCLI:
    def test_serve_args_parse(self):
        args = build_parser().parse_args(
            ["serve", "--synthetic", "5000", "--delta", "50",
             "--max-wait-ms", "0.5", "--cache-size", "16", "--port", "0"]
        )
        assert args.command == "serve"
        assert args.synthetic == 5000
        assert args.cache_size == 16

    def test_build_serve_server_synthetic(self):
        args = build_parser().parse_args(
            ["serve", "--synthetic", "5000", "--delta", "50",
             "--cache-size", "4"]
        )
        host, server = build_serve_server(args)
        assert host.updatable
        assert server.coalescer.hosts["default"] is host
        direct = host.index.query_batch(np.array([0.0]), np.array([1e18]))
        assert direct.values[0] >= 0.0

    def test_build_serve_server_requires_one_budget(self):
        args = build_parser().parse_args(["serve", "--synthetic", "100"])
        with pytest.raises(QueryError):
            build_serve_server(args)

    def test_build_serve_server_rejects_two_sources(self):
        args = build_parser().parse_args(
            ["serve", "some.json", "--synthetic", "100", "--delta", "50"]
        )
        with pytest.raises(QueryError):
            build_serve_server(args)

    def test_query_remote_command_end_to_end(self, index, capsys):
        async def run():
            server = ServeServer(EngineHost(index))
            await server.start(port=0)
            url = f"http://127.0.0.1:{server.port}"
            loop = asyncio.get_running_loop()
            try:
                codes = []
                codes.append(await loop.run_in_executor(
                    None, main, ["query-remote", url, "100", "600"]
                ))
                codes.append(await loop.run_in_executor(
                    None, main, ["query-remote", url, "--stats"]
                ))
                return codes
            finally:
                await server.stop()

        codes = asyncio.run(run())
        assert codes == [0, 0]
        output = capsys.readouterr().out
        assert "[100, 600] =" in output
        assert "batch_size=" in output
        assert '"coalescer"' in output  # the --stats JSON dump
