"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def ticks_csv(tmp_path):
    rng = np.random.default_rng(0)
    keys = np.sort(rng.uniform(0, 1000, size=2000))
    measures = 100.0 + rng.uniform(0, 50, size=2000)
    path = tmp_path / "ticks.csv"
    lines = ["key,measure"] + [f"{k:.6f},{m:.6f}" for k, m in zip(keys, measures)]
    path.write_text("\n".join(lines))
    return path, keys, measures


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build", "in.csv", "out.json"])

    def test_build_budget_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "in.csv", "out.json", "--eps-abs", "10", "--delta", "5"]
            )

    def test_query_parses(self):
        args = build_parser().parse_args(["query", "idx.json", "1.0", "2.0", "--eps-rel", "0.01"])
        assert args.low == 1.0 and args.eps_rel == 0.01


class TestBuildQueryRoundTrip:
    def test_count_build_query_info(self, ticks_csv, tmp_path, capsys):
        csv_path, keys, _ = ticks_csv
        index_path = tmp_path / "count.json"
        assert main(["build", str(csv_path), str(index_path),
                     "--aggregate", "count", "--eps-abs", "50"]) == 0
        assert index_path.exists()
        capsys.readouterr()  # discard the build banner

        assert main(["query", str(index_path), "100", "900", "--eps-abs", "50"]) == 0
        output = capsys.readouterr().out
        reported = float(output.split("=")[1].split("(")[0])
        exact = float(np.count_nonzero((keys >= 100) & (keys <= 900)))
        assert abs(reported - exact) <= 50 + 1e-6

        assert main(["info", str(index_path)]) == 0
        info_output = capsys.readouterr().out
        assert "segments" in info_output

    def test_max_build_and_query(self, ticks_csv, tmp_path, capsys):
        csv_path, keys, measures = ticks_csv
        index_path = tmp_path / "max.json"
        assert main(["build", str(csv_path), str(index_path),
                     "--aggregate", "max", "--eps-abs", "10"]) == 0
        capsys.readouterr()  # discard the build banner
        assert main(["query", str(index_path), "200", "800"]) == 0
        output = capsys.readouterr().out
        reported = float(output.split("=")[1].split("(")[0])
        mask = (keys >= 200) & (keys <= 800)
        assert abs(reported - measures[mask].max()) <= 10 + 1e-6

    def test_build_with_delta(self, ticks_csv, tmp_path):
        csv_path, _, _ = ticks_csv
        index_path = tmp_path / "delta.json"
        assert main(["build", str(csv_path), str(index_path),
                     "--aggregate", "count", "--delta", "25"]) == 0

    def test_missing_input_returns_error_code(self, tmp_path):
        assert main(["build", str(tmp_path / "missing.csv"), str(tmp_path / "o.json"),
                     "--eps-abs", "50"]) == 2

    def test_query_missing_index_returns_error_code(self, tmp_path):
        assert main(["query", str(tmp_path / "missing.json"), "0", "1"]) == 2


class TestIngest:
    def test_synthetic_stream_compacts_and_reports(self, capsys):
        assert main(["ingest", "--synthetic", "6000", "--delta", "40",
                     "--batch-size", "800", "--max-buffer", "1000"]) == 0
        output = capsys.readouterr().out
        assert "base:" in output
        assert "[compacted]" in output
        assert "done: 6000 records" in output
        # Every probe error printed must honor the certified bound (2*delta).
        for line in output.splitlines():
            if "|err|" in line:
                error = float(line.split("|err| ")[1].split(")")[0])
                assert error <= 80.0 + 1e-6

    def test_csv_stream(self, ticks_csv, capsys):
        csv_path, _, _ = ticks_csv
        assert main(["ingest", str(csv_path), "--aggregate", "max",
                     "--eps-abs", "20", "--batch-size", "400"]) == 0
        output = capsys.readouterr().out
        assert "done: 2000 records" in output

    def test_requires_exactly_one_source(self, ticks_csv):
        csv_path, _, _ = ticks_csv
        assert main(["ingest", "--delta", "10"]) == 2  # neither
        assert main(["ingest", str(csv_path), "--synthetic", "100",
                     "--delta", "10"]) == 2  # both

    def test_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "--synthetic", "100"])
