"""End-to-end observability tests over a live serving front.

Covers the telemetry surface as a client sees it: the Prometheus
``/metrics`` exposition (grammar + coverage), the ``/stats`` JSON staying a
view over the same instruments, sampled ``/traces`` timelines, the
``/slowlog`` ring, the JSON access log, and the ``repro metrics`` CLI.
"""

import asyncio
import io
import json

import numpy as np
import pytest

from repro import Aggregate, PolyFitIndex, UpdatablePolyFitIndex
from repro.cli import main
from repro.obs.metrics import exposed_metric_names, validate_exposition
from repro.serve import (
    EngineHost,
    ServeServer,
    metrics_remote,
    query_batch_remote,
    query_remote,
    request_json,
    slowlog_remote,
    stats_remote,
    traces_remote,
)

DELTA = 50.0


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(41)
    return np.sort(rng.uniform(0.0, 1000.0, size=20_000))


@pytest.fixture(scope="module")
def index(keys):
    return PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA)


def with_server(make_hosts, scenario, **server_kwargs):
    """Run ``scenario(base_url, server)`` on a worker thread against a live server."""

    async def run():
        server = ServeServer(make_hosts(), **server_kwargs)
        await server.start(port=0)
        base_url = f"http://127.0.0.1:{server.port}"
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, scenario, base_url, server)
        finally:
            await server.stop()

    return asyncio.run(run())


class TestMetricsEndpoint:
    def test_exposition_valid_and_covers_all_layers(self, keys, tmp_path):
        def make_host():
            updatable = UpdatablePolyFitIndex.build(
                keys[:4000],
                aggregate=Aggregate.COUNT,
                delta=DELTA,
                wal_path=tmp_path / "metrics.wal",
            )
            updatable.insert(np.array([1.5, 2.5]))
            updatable.compact()
            return EngineHost(updatable, cache_size=16, num_shards=2)

        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)
            query_remote(url, 10.0, 500.0)  # second identical => cache hit
            return metrics_remote(url)

        text = with_server(make_host, scenario)
        assert validate_exposition(text) == []
        names = set(exposed_metric_names(text))
        expected = {
            # serve layer
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_http_slow_queries_total",
            "repro_coalescer_submitted_total",
            "repro_coalescer_served_total",
            "repro_coalescer_batches_total",
            "repro_coalescer_queue_wait_seconds",
            "repro_coalescer_flush_seconds",
            "repro_coalescer_batch_size",
            "repro_host_pins_total",
            "repro_host_epoch",
            "repro_host_write_version",
            # cache
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_cache_entries",
            # shard fan-out
            "repro_shard_exec_seconds",
            # ingest / WAL
            "repro_wal_appends_total",
            "repro_wal_fsyncs_total",
            "repro_wal_fsync_seconds",
            "repro_compactions_total",
            "repro_compaction_seconds",
            "repro_compaction_trigger_buffer_size",
        }
        missing = expected - names
        assert not missing, f"families missing from /metrics: {sorted(missing)}"
        # Host families carry the index label.
        assert 'repro_host_pins_total{index="default"}' in text

    def test_metrics_json_snapshot(self, index):
        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)
            return request_json(url, "/metrics.json")

        snap = with_server(lambda: EngineHost(index), scenario)
        assert snap["repro_http_requests_total"]["kind"] == "counter"
        latency = snap["repro_http_request_seconds"]["samples"]
        assert any("p99" in sample for sample in latency)

    def test_uninstrumented_server_exposes_nothing_but_serves(self, index):
        def scenario(url, _server):
            answer = query_remote(url, 10.0, 500.0)
            return answer, metrics_remote(url)

        answer, text = with_server(
            lambda: EngineHost(index, instrument=False),
            scenario,
            instrument=False,
        )
        assert answer["value"] > 0
        assert exposed_metric_names(text) == []


class TestStatsSingleSource:
    def test_stats_is_view_over_registry(self, index):
        def scenario(url, server):
            for _ in range(3):
                query_remote(url, 10.0, 500.0)
            stats = stats_remote(url)
            exposition = metrics_remote(url)
            return stats, exposition, server.coalescer.stats

        stats, text, live = with_server(lambda: EngineHost(index), scenario)
        coalescer = stats["coalescer"]
        assert coalescer["submitted"] == 3
        assert coalescer["served"] == 3
        # The exposition renders the exact same instrument values.
        assert "repro_coalescer_submitted_total 3" in text
        assert "repro_coalescer_served_total 3" in text
        assert live.submitted == 3
        assert stats["slow_queries"] == 0

    def test_cache_info_agrees_with_metrics(self, index):
        def scenario(url, _server):
            lows, highs = [10.0, 20.0], [500.0, 600.0]
            query_batch_remote(url, lows, highs)
            query_batch_remote(url, lows, highs)
            return stats_remote(url), metrics_remote(url)

        stats, text = with_server(
            lambda: EngineHost(index, cache_size=8), scenario
        )
        cache = stats["hosts"]["default"]["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 1
        assert 'repro_cache_hits_total{index="default"} 1' in text
        assert 'repro_cache_misses_total{index="default"} 1' in text


class TestTracing:
    def test_traces_record_full_timeline(self, index):
        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)
            return traces_remote(url)

        payload = with_server(
            lambda: EngineHost(index, cache_size=8),
            scenario,
            trace_sample_rate=1.0,
            trace_seed=1,
        )
        assert payload["sample_rate"] == 1.0
        assert payload["sampled_total"] == 1
        trace = payload["traces"][0]
        span_names = [span["name"] for span in trace["spans"]]
        assert span_names[:3] == ["queue_wait", "pin", "cache_probe"]
        assert "engine_exec" in span_names or "shard_exec" in span_names
        assert trace["attrs"]["index"] == "default"
        assert trace["attrs"]["batch_size"] >= 1

    def test_sampling_rate_respected_deterministically(self, index):
        def scenario(url, _server):
            for _ in range(40):
                query_remote(url, 10.0, 500.0)
            return traces_remote(url)

        payload_a = with_server(
            lambda: EngineHost(index), scenario,
            trace_sample_rate=0.25, trace_seed=7,
        )
        payload_b = with_server(
            lambda: EngineHost(index), scenario,
            trace_sample_rate=0.25, trace_seed=7,
        )
        assert 0 < payload_a["sampled_total"] < 40
        assert payload_a["sampled_total"] == payload_b["sampled_total"]

    def test_zero_rate_records_nothing(self, index):
        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)
            return traces_remote(url)

        payload = with_server(lambda: EngineHost(index), scenario)
        assert payload["sampled_total"] == 0
        assert payload["traces"] == []


class TestSlowLogAndAccessLog:
    def test_slowlog_threshold_zero_catches_queries(self, index):
        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)
            query_batch_remote(url, [10.0], [500.0])
            stats_remote(url)  # non-query endpoints never land in the slowlog
            return slowlog_remote(url), metrics_remote(url)

        slowlog, text = with_server(
            lambda: EngineHost(index), scenario, slow_query_ms=0.0
        )
        assert slowlog["total"] == 2
        endpoints = {entry["endpoint"] for entry in slowlog["entries"]}
        assert endpoints == {"/query", "/query_batch"}
        assert "repro_http_slow_queries_total 2" in text

    def test_high_threshold_records_nothing(self, index):
        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)
            return slowlog_remote(url)

        slowlog = with_server(
            lambda: EngineHost(index), scenario, slow_query_ms=60_000.0
        )
        assert slowlog["total"] == 0

    def test_json_access_log(self, index):
        stream = io.StringIO()

        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)
            stats_remote(url)

        with_server(
            lambda: EngineHost(index),
            scenario,
            log_format="json",
            log_stream=stream,
        )
        lines = [json.loads(line) for line in stream.getvalue().strip().splitlines()]
        assert len(lines) == 2
        query_line = lines[0]
        assert query_line["path"] == "/query"
        assert query_line["status"] == 200
        assert query_line["duration_ms"] >= 0
        assert query_line["epoch"] == 0
        assert query_line["batch_size"] >= 1
        assert lines[1]["path"] == "/stats"
        assert "batch_size" not in lines[1]

    def test_plain_format_logs_nothing(self, index):
        stream = io.StringIO()

        def scenario(url, _server):
            query_remote(url, 10.0, 500.0)

        with_server(
            lambda: EngineHost(index), scenario, log_stream=stream
        )
        assert stream.getvalue() == ""

    def test_invalid_log_format_rejected(self, index):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            ServeServer(EngineHost(index), log_format="xml")


class TestMetricsCli:
    def _serve_and_run(self, index, argv_builder):
        async def run():
            server = ServeServer(EngineHost(index), slow_query_ms=0.0)
            await server.start(port=0)
            url = f"http://127.0.0.1:{server.port}"
            loop = asyncio.get_running_loop()

            def scenario():
                query_remote(url, 10.0, 500.0)
                return main(argv_builder(url))

            try:
                return await loop.run_in_executor(None, scenario)
            finally:
                await server.stop()

        return asyncio.run(run())

    def test_metrics_command_prints_exposition(self, index, capsys):
        code = self._serve_and_run(index, lambda url: ["metrics", url])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_http_requests_total counter" in out
        assert validate_exposition(out) == []

    def test_metrics_command_json(self, index, capsys):
        code = self._serve_and_run(index, lambda url: ["metrics", url, "--json"])
        assert code == 0
        snap = json.loads(capsys.readouterr().out)
        assert "repro_coalescer_served_total" in snap

    def test_metrics_command_slowlog(self, index, capsys):
        code = self._serve_and_run(index, lambda url: ["metrics", url, "--slowlog"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] >= 1

    def test_metrics_command_traces(self, index, capsys):
        code = self._serve_and_run(index, lambda url: ["metrics", url, "--traces"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traces"] == []  # sampling off on this server

    def test_serve_parser_accepts_observability_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--synthetic", "1000", "--delta", "50",
                "--trace-sample-rate", "0.01", "--trace-seed", "3",
                "--slow-query-ms", "5", "--log-format", "json",
                "--no-instrument",
            ]
        )
        assert args.trace_sample_rate == 0.01
        assert args.trace_seed == 3
        assert args.slow_query_ms == 5.0
        assert args.log_format == "json"
        assert args.no_instrument is True
