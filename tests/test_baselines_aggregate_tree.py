"""Tests for the aggregate segment tree and aggregate R-tree baselines."""

import numpy as np
import pytest

from repro import Aggregate
from repro.baselines import AggregateRTree2D, AggregateSegmentTree, BruteForceAggregator
from repro.errors import DataError, QueryError


class TestAggregateSegmentTree:
    @pytest.fixture()
    def data(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.uniform(0, 100, size=500))
        measures = rng.uniform(0, 1000, size=500)
        return keys, measures

    def test_max_matches_brute_force(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        brute = BruteForceAggregator(keys, measures)
        rng = np.random.default_rng(1)
        for _ in range(100):
            low, high = np.sort(rng.choice(keys, size=2, replace=False))
            assert tree.range_query(low, high) == pytest.approx(
                brute.range_aggregate(low, high, Aggregate.MAX)
            )

    def test_min_matches_brute_force(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.MIN)
        brute = BruteForceAggregator(keys, measures)
        rng = np.random.default_rng(2)
        for _ in range(50):
            low, high = np.sort(rng.choice(keys, size=2, replace=False))
            assert tree.range_query(low, high) == pytest.approx(
                brute.range_aggregate(low, high, Aggregate.MIN)
            )

    def test_sum_matches_brute_force(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.SUM)
        brute = BruteForceAggregator(keys, measures)
        rng = np.random.default_rng(3)
        for _ in range(50):
            low, high = np.sort(rng.uniform(0, 100, size=2))
            assert tree.range_query(low, high) == pytest.approx(
                brute.range_aggregate(low, high, Aggregate.SUM)
            )

    def test_count_mode(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.COUNT)
        assert tree.range_query(keys[0], keys[-1]) == keys.size

    def test_empty_range_semantics(self, data):
        keys, measures = data
        max_tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        sum_tree = AggregateSegmentTree(keys, measures, Aggregate.SUM)
        assert np.isnan(max_tree.range_query(200.0, 300.0))
        assert sum_tree.range_query(200.0, 300.0) == 0.0

    def test_unsorted_input_sorted_internally(self):
        keys = np.array([5.0, 1.0, 3.0])
        measures = np.array([50.0, 10.0, 30.0])
        tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        assert tree.range_query(1.0, 3.0) == 30.0

    def test_range_extreme_by_index(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        assert tree.range_extreme(0, keys.size - 1) == pytest.approx(measures.max())
        assert tree.range_extreme(5, 3) == -np.inf  # empty index range -> identity

    def test_index_out_of_range(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        with pytest.raises(QueryError):
            tree.range_extreme(0, keys.size)

    def test_invalid_key_range(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        with pytest.raises(QueryError):
            tree.range_query(10.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            AggregateSegmentTree(np.array([]), np.array([]))

    def test_single_element(self):
        tree = AggregateSegmentTree(np.array([5.0]), np.array([42.0]), Aggregate.MAX)
        assert tree.range_query(0.0, 10.0) == 42.0

    def test_size_in_bytes(self, data):
        keys, measures = data
        tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        assert tree.size_in_bytes() > 0


class TestAggregateRTree2D:
    @pytest.fixture()
    def points(self):
        rng = np.random.default_rng(4)
        xs = rng.uniform(-50, 50, size=3000)
        ys = rng.uniform(-20, 20, size=3000)
        return xs, ys

    def test_count_matches_brute_force(self, points):
        xs, ys = points
        tree = AggregateRTree2D(xs, ys)
        brute = BruteForceAggregator(xs, np.ones(xs.size), second_keys=ys)
        rng = np.random.default_rng(5)
        for _ in range(50):
            x1, x2 = np.sort(rng.uniform(-50, 50, size=2))
            y1, y2 = np.sort(rng.uniform(-20, 20, size=2))
            assert tree.rectangle_aggregate(x1, x2, y1, y2) == pytest.approx(
                brute.rectangle_aggregate(x1, x2, y1, y2)
            )

    def test_sum_mode(self, points):
        xs, ys = points
        measures = np.abs(xs) + 1.0
        tree = AggregateRTree2D(xs, ys, measures, aggregate=Aggregate.SUM)
        brute = BruteForceAggregator(xs, measures, second_keys=ys)
        assert tree.rectangle_aggregate(-50, 50, -20, 20) == pytest.approx(
            brute.rectangle_aggregate(-50, 50, -20, 20, Aggregate.SUM)
        )

    def test_whole_domain_count(self, points):
        xs, ys = points
        tree = AggregateRTree2D(xs, ys)
        assert tree.rectangle_aggregate(xs.min(), xs.max(), ys.min(), ys.max()) == xs.size

    def test_empty_rectangle(self, points):
        xs, ys = points
        tree = AggregateRTree2D(xs, ys)
        assert tree.rectangle_aggregate(100.0, 200.0, 100.0, 200.0) == 0.0

    def test_invalid_rectangle(self, points):
        xs, ys = points
        tree = AggregateRTree2D(xs, ys)
        with pytest.raises(QueryError):
            tree.rectangle_aggregate(1.0, 0.0, 0.0, 1.0)

    def test_max_aggregate_rejected(self, points):
        xs, ys = points
        with pytest.raises(DataError):
            AggregateRTree2D(xs, ys, aggregate=Aggregate.MAX)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            AggregateRTree2D(np.array([]), np.array([]))

    def test_node_count_and_size(self, points):
        xs, ys = points
        tree = AggregateRTree2D(xs, ys, leaf_capacity=32, fanout=8)
        assert tree.num_nodes > 1
        assert tree.size_in_bytes() > 0

    def test_bad_parameters(self, points):
        xs, ys = points
        with pytest.raises(DataError):
            AggregateRTree2D(xs, ys, leaf_capacity=0)
        with pytest.raises(DataError):
            AggregateRTree2D(xs, ys, fanout=1)
