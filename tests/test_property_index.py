"""Property-based tests for the PolyFit indexes: guarantees on random data."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Aggregate, Guarantee, PolyFitIndex, RangeQuery
from repro.baselines import BruteForceAggregator


def _dataset_strategy(min_size=10, max_size=60):
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.lists(
                st.floats(min_value=0, max_value=1e4, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
                unique=True,
            ),
            st.lists(
                st.floats(min_value=0, max_value=1e3, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            ),
        )
    )


class TestCountGuaranteeProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        data=_dataset_strategy(),
        eps=st.floats(min_value=2.0, max_value=100.0),
        bounds=st.tuples(
            st.floats(min_value=-100, max_value=1.1e4, allow_nan=False),
            st.floats(min_value=-100, max_value=1.1e4, allow_nan=False),
        ),
    )
    def test_absolute_count_guarantee(self, data, eps, bounds):
        keys = np.sort(np.asarray(data[0], dtype=np.float64))
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                   guarantee=Guarantee.absolute(eps))
        low, high = min(bounds), max(bounds)
        query = RangeQuery(low, high, Aggregate.COUNT)
        exact = float(np.count_nonzero((keys >= low) & (keys <= high)))
        result = index.query(query, Guarantee.absolute(eps))
        assert abs(result.value - exact) <= eps + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(data=_dataset_strategy(), eps=st.floats(min_value=0.005, max_value=0.5))
    def test_relative_count_guarantee_with_fallback(self, data, eps):
        keys = np.sort(np.asarray(data[0], dtype=np.float64))
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=5.0)
        low, high = float(keys[0]), float(keys[-1])
        query = RangeQuery(low, high, Aggregate.COUNT)
        exact = float(keys.size)
        result = index.query(query, Guarantee.relative(eps))
        assert abs(result.value - exact) <= eps * exact + 1e-6


class TestSumGuaranteeProperty:
    @settings(max_examples=15, deadline=None)
    @given(data=_dataset_strategy(), eps=st.floats(min_value=10.0, max_value=500.0))
    def test_absolute_sum_guarantee(self, data, eps):
        keys = np.sort(np.asarray(data[0], dtype=np.float64))
        measures = np.asarray(data[1], dtype=np.float64)
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.SUM,
                                   guarantee=Guarantee.absolute(eps))
        brute = BruteForceAggregator(keys, measures)
        low, high = float(keys[len(keys) // 4]), float(keys[-1])
        query = RangeQuery(low, high, Aggregate.SUM)
        exact = brute.range_aggregate(low, high, Aggregate.SUM)
        assert abs(index.query(query).value - exact) <= eps + 1e-6


class TestMaxGuaranteeProperty:
    @settings(max_examples=15, deadline=None)
    @given(data=_dataset_strategy(min_size=15, max_size=50),
           eps=st.floats(min_value=5.0, max_value=200.0))
    def test_absolute_max_guarantee(self, data, eps):
        keys = np.sort(np.asarray(data[0], dtype=np.float64))
        measures = np.asarray(data[1], dtype=np.float64)
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MAX,
                                   guarantee=Guarantee.absolute(eps))
        brute = BruteForceAggregator(keys, measures)
        low, high = float(keys[2]), float(keys[-3])
        exact = brute.range_aggregate(low, high, Aggregate.MAX)
        if np.isnan(exact):
            return
        result = index.query(RangeQuery(low, high, Aggregate.MAX))
        assert abs(result.value - exact) <= eps + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(data=_dataset_strategy(min_size=15, max_size=50),
           eps=st.floats(min_value=5.0, max_value=200.0))
    def test_absolute_min_guarantee(self, data, eps):
        keys = np.sort(np.asarray(data[0], dtype=np.float64))
        measures = np.asarray(data[1], dtype=np.float64)
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MIN,
                                   guarantee=Guarantee.absolute(eps))
        brute = BruteForceAggregator(keys, measures)
        low, high = float(keys[2]), float(keys[-3])
        exact = brute.range_aggregate(low, high, Aggregate.MIN)
        if np.isnan(exact):
            return
        result = index.query(RangeQuery(low, high, Aggregate.MIN))
        assert abs(result.value - exact) <= eps + 1e-6


class TestStructuralProperties:
    @settings(max_examples=15, deadline=None)
    @given(data=_dataset_strategy(), delta=st.floats(min_value=1.0, max_value=100.0))
    def test_segments_partition_domain(self, data, delta):
        keys = np.sort(np.asarray(data[0], dtype=np.float64))
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=delta)
        segments = index.segments
        assert segments[0].start == 0
        assert segments[-1].stop == keys.size
        for previous, current in zip(segments, segments[1:]):
            assert current.start == previous.stop
            assert current.key_low > previous.key_high

    @settings(max_examples=10, deadline=None)
    @given(data=_dataset_strategy())
    def test_index_smaller_with_larger_delta(self, data):
        keys = np.sort(np.asarray(data[0], dtype=np.float64))
        tight = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=1.0)
        loose = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=100.0)
        assert loose.num_segments <= tight.num_segments
        assert loose.size_in_bytes() <= tight.size_in_bytes()
