"""Tests for Greedy Segmentation (GS) and the DP reference."""

import numpy as np
import pytest

from repro.errors import SegmentationError
from repro.fitting import dp_segmentation, greedy_segmentation, segment_count


def _piecewise_quadratic(n_per_piece: int = 30, pieces: int = 3, seed: int = 0):
    """Keys plus values that are exactly piecewise quadratic with jumps."""
    rng = np.random.default_rng(seed)
    keys = []
    values = []
    offset = 0.0
    for piece in range(pieces):
        ks = np.linspace(piece * 10.0, piece * 10.0 + 9.0, n_per_piece)
        vs = offset + (ks - ks[0]) ** 2 * rng.uniform(0.5, 2.0)
        keys.append(ks)
        values.append(vs)
        offset = vs[-1] + rng.uniform(50, 100)  # jump between pieces
    return np.concatenate(keys), np.concatenate(values)


class TestGreedySegmentation:
    def test_all_segments_within_budget(self):
        keys, values = _piecewise_quadratic()
        delta = 5.0
        segments = greedy_segmentation(keys, values, delta=delta, degree=2)
        assert all(segment.max_error <= delta + 1e-9 for segment in segments)

    def test_segments_cover_all_points_without_overlap(self):
        keys, values = _piecewise_quadratic()
        segments = greedy_segmentation(keys, values, delta=3.0, degree=2)
        assert segments[0].start == 0
        assert segments[-1].stop == keys.size
        for previous, current in zip(segments, segments[1:]):
            assert current.start == previous.stop

    def test_key_spans_match_points(self):
        keys, values = _piecewise_quadratic()
        segments = greedy_segmentation(keys, values, delta=3.0, degree=2)
        for segment in segments:
            assert segment.key_low == keys[segment.start]
            assert segment.key_high == keys[segment.stop - 1]
            assert segment.covers(keys[segment.start])

    def test_exact_piecewise_data_needs_one_segment_per_piece(self):
        keys, values = _piecewise_quadratic(pieces=3)
        # Degree 2 can capture each quadratic piece exactly; jumps force splits.
        segments = greedy_segmentation(keys, values, delta=1.0, degree=2)
        assert segment_count(segments) == 3

    def test_tiny_delta_with_interpolating_degree(self):
        # A perfectly linear function needs a single degree-1 segment even
        # under a near-zero budget (the budget only has to absorb LP solver
        # round-off, which is far below 1e-6).
        keys = np.arange(10.0)
        values = 2.0 * keys + 1.0
        segments = greedy_segmentation(keys, values, delta=1e-6, degree=1)
        assert segment_count(segments) == 1

    def test_smaller_delta_gives_at_least_as_many_segments(self):
        keys, values = _piecewise_quadratic(pieces=2, n_per_piece=40, seed=2)
        values = values + np.sin(keys) * 3.0
        loose = greedy_segmentation(keys, values, delta=20.0, degree=2)
        tight = greedy_segmentation(keys, values, delta=2.0, degree=2)
        assert segment_count(tight) >= segment_count(loose)

    def test_higher_degree_gives_at_most_as_many_segments(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.uniform(0, 50, size=120))
        values = np.cumsum(rng.uniform(0, 3, size=120))
        low_degree = greedy_segmentation(keys, values, delta=2.0, degree=1)
        high_degree = greedy_segmentation(keys, values, delta=2.0, degree=3)
        assert segment_count(high_degree) <= segment_count(low_degree)

    def test_linear_and_exponential_search_agree(self):
        rng = np.random.default_rng(4)
        keys = np.sort(rng.uniform(0, 20, size=80))
        values = np.cumsum(rng.uniform(0, 2, size=80))
        linear = greedy_segmentation(keys, values, delta=1.5, degree=2,
                                     use_exponential_search=False)
        exponential = greedy_segmentation(keys, values, delta=1.5, degree=2,
                                          use_exponential_search=True)
        assert [s.stop for s in linear] == [s.stop for s in exponential]

    def test_rejects_unsorted_keys(self):
        with pytest.raises(SegmentationError):
            greedy_segmentation(np.array([2.0, 1.0]), np.array([1.0, 2.0]), 1.0, 1)

    def test_rejects_empty(self):
        with pytest.raises(SegmentationError):
            greedy_segmentation(np.array([]), np.array([]), 1.0, 1)

    def test_rejects_negative_delta(self):
        with pytest.raises(SegmentationError):
            greedy_segmentation(np.array([1.0]), np.array([1.0]), -1.0, 1)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SegmentationError):
            greedy_segmentation(np.array([1.0, 2.0]), np.array([1.0]), 1.0, 1)

    def test_single_point(self):
        segments = greedy_segmentation(np.array([3.0]), np.array([9.0]), 1.0, 2)
        assert segment_count(segments) == 1
        assert segments[0].polynomial(3.0) == pytest.approx(9.0)


class TestOptimality:
    """GS must produce the minimum number of segments (Theorem 1)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("degree", [1, 2])
    def test_gs_matches_dp_segment_count(self, seed, degree):
        rng = np.random.default_rng(seed)
        keys = np.sort(rng.uniform(0, 10, size=30))
        values = np.cumsum(rng.uniform(0, 4, size=30))
        delta = 1.0
        gs = greedy_segmentation(keys, values, delta=delta, degree=degree)
        dp = dp_segmentation(keys, values, delta=delta, degree=degree)
        assert segment_count(gs) == segment_count(dp)

    def test_dp_segments_within_budget(self):
        rng = np.random.default_rng(5)
        keys = np.sort(rng.uniform(0, 10, size=25))
        values = np.cumsum(rng.uniform(0, 4, size=25))
        delta = 0.8
        dp = dp_segmentation(keys, values, delta=delta, degree=1)
        assert all(segment.max_error <= delta + 1e-9 for segment in dp)
        assert dp[0].start == 0 and dp[-1].stop == keys.size

    def test_dp_rejects_bad_input(self):
        with pytest.raises(SegmentationError):
            dp_segmentation(np.array([]), np.array([]), 1.0, 1)


class TestMonotonicityLemma:
    """Lemma 1: the minimax error is monotone in the point set."""

    def test_prefix_error_monotone(self):
        from repro.fitting import fit_minimax_polynomial

        rng = np.random.default_rng(6)
        keys = np.sort(rng.uniform(0, 10, size=40))
        values = np.cumsum(rng.uniform(0, 5, size=40))
        errors = [
            fit_minimax_polynomial(keys[:length], values[:length], degree=2, solver="lp").max_error
            for length in range(4, 41, 4)
        ]
        for shorter, longer in zip(errors, errors[1:]):
            assert longer >= shorter - 1e-9
