"""Tests for the two-key cumulative count structure."""

import numpy as np
import pytest

from repro.errors import DataError, QueryError
from repro.functions import build_cumulative_2d


@pytest.fixture()
def grid_points():
    """A deterministic 5x5 lattice of points."""
    xs, ys = np.meshgrid(np.arange(5.0), np.arange(5.0))
    return xs.ravel(), ys.ravel()


class TestBuild:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            build_cumulative_2d(np.array([]), np.array([]))

    def test_rejects_mismatched(self):
        with pytest.raises(DataError):
            build_cumulative_2d(np.array([1.0]), np.array([1.0, 2.0]))

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            build_cumulative_2d(np.array([np.nan]), np.array([1.0]))

    def test_size_and_bounds(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        assert cf.size == 25
        assert cf.bounds == (0.0, 4.0, 0.0, 4.0)


class TestEvaluate:
    def test_corner_counts(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        assert cf.evaluate(0.0, 0.0) == 1.0
        assert cf.evaluate(4.0, 4.0) == 25.0
        assert cf.evaluate(1.0, 2.0) == 6.0  # 2 columns x 3 rows
        assert cf.evaluate(-1.0, 4.0) == 0.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 10, size=400)
        ys = rng.uniform(0, 10, size=400)
        cf = build_cumulative_2d(xs, ys)
        for _ in range(40):
            u, v = rng.uniform(0, 10, size=2)
            expected = np.count_nonzero((xs <= u) & (ys <= v))
            assert cf.evaluate(u, v) == expected


class TestRangeCount:
    def test_full_box(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        assert cf.range_count(0.0, 4.0, 0.0, 4.0) == 25.0

    def test_sub_rectangle(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        assert cf.range_count(1.0, 2.0, 1.0, 3.0) == 6.0  # 2 x 3 lattice points

    def test_empty_rectangle(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        assert cf.range_count(0.1, 0.9, 0.1, 0.9) == 0.0

    def test_invalid_bounds(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        with pytest.raises(QueryError):
            cf.range_count(2.0, 1.0, 0.0, 1.0)

    def test_matches_brute_force_random(self):
        rng = np.random.default_rng(9)
        xs = rng.normal(0, 5, size=500)
        ys = rng.normal(0, 5, size=500)
        cf = build_cumulative_2d(xs, ys)
        for _ in range(40):
            x1, x2 = np.sort(rng.uniform(-10, 10, size=2))
            y1, y2 = np.sort(rng.uniform(-10, 10, size=2))
            expected = np.count_nonzero((xs >= x1) & (xs <= x2) & (ys >= y1) & (ys <= y2))
            assert cf.range_count(x1, x2, y1, y2) == expected


class TestSampleGrid:
    def test_grid_shapes(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        gx, gy, gcf = cf.sample_grid(resolution=8)
        assert gx.shape == (8,)
        assert gy.shape == (8,)
        assert gcf.shape == (8, 8)

    def test_grid_monotone_in_both_axes(self):
        rng = np.random.default_rng(4)
        xs = rng.uniform(0, 1, size=300)
        ys = rng.uniform(0, 1, size=300)
        cf = build_cumulative_2d(xs, ys)
        _, _, gcf = cf.sample_grid(resolution=16)
        assert np.all(np.diff(gcf, axis=0) >= 0)
        assert np.all(np.diff(gcf, axis=1) >= 0)

    def test_grid_total_matches_size(self):
        rng = np.random.default_rng(5)
        xs = rng.uniform(0, 1, size=250)
        ys = rng.uniform(0, 1, size=250)
        cf = build_cumulative_2d(xs, ys)
        _, _, gcf = cf.sample_grid(resolution=12)
        assert gcf[-1, -1] == 250

    def test_bad_resolution(self, grid_points):
        cf = build_cumulative_2d(*grid_points)
        with pytest.raises(QueryError):
            cf.sample_grid(resolution=1)


class TestWeightedCumulative2D:
    def test_weighted_evaluate_and_range(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        ys = np.array([0.0, 1.0, 2.0, 3.0])
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        cf = build_cumulative_2d(xs, ys, weights=weights)
        assert cf.total == 10.0
        assert cf.evaluate(1.5, 1.5) == 3.0
        assert cf.range_count(1.0, 3.0, 1.0, 3.0) == 9.0

    def test_weighted_grid_total(self):
        rng = np.random.default_rng(8)
        xs = rng.uniform(0, 1, size=200)
        ys = rng.uniform(0, 1, size=200)
        weights = rng.uniform(0, 5, size=200)
        cf = build_cumulative_2d(xs, ys, weights=weights)
        _, _, grid = cf.sample_grid(resolution=10)
        assert grid[-1, -1] == pytest.approx(weights.sum())

    def test_negative_weights_rejected(self):
        with pytest.raises(DataError):
            build_cumulative_2d(np.array([0.0]), np.array([0.0]), weights=np.array([-1.0]))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(DataError):
            build_cumulative_2d(np.array([0.0, 1.0]), np.array([0.0, 1.0]),
                                weights=np.array([1.0]))
