"""Tests for the timing harness and reporting helpers."""

import pytest

from repro.bench import (
    ExperimentRecord,
    MethodTiming,
    format_series,
    format_table,
    record_to_lines,
    time_callable_ns,
    time_per_query_ns,
)
from repro.errors import QueryError


class TestTimePerQuery:
    def test_basic_measurement(self):
        calls = []
        timing = time_per_query_ns(calls.append, list(range(50)), repeats=2, method="noop")
        assert isinstance(timing, MethodTiming)
        assert timing.method == "noop"
        assert timing.per_query_ns > 0
        assert timing.total_queries == 50
        assert timing.repeats == 2
        # warmup + 2 repeats
        assert len(calls) == 150

    def test_no_warmup(self):
        calls = []
        time_per_query_ns(calls.append, [1, 2, 3], repeats=1, warmup=False)
        assert len(calls) == 3

    def test_slow_function_measured_higher(self):
        import time as _time

        fast = time_per_query_ns(lambda q: None, list(range(5)), repeats=1, warmup=False)
        slow = time_per_query_ns(lambda q: _time.sleep(0.001), list(range(5)),
                                 repeats=1, warmup=False)
        assert slow.per_query_ns > fast.per_query_ns

    def test_empty_workload_rejected(self):
        with pytest.raises(QueryError):
            time_per_query_ns(lambda q: None, [])

    def test_bad_repeats_rejected(self):
        with pytest.raises(QueryError):
            time_per_query_ns(lambda q: None, [1], repeats=0)


class TestTimeCallable:
    def test_returns_positive_time(self):
        assert time_callable_ns(lambda: sum(range(1000))) > 0

    def test_bad_repeats(self):
        with pytest.raises(QueryError):
            time_callable_ns(lambda: None, repeats=0)


class TestFormatting:
    def test_format_table_contains_all_cells(self):
        text = format_table(["method", "time"], [["PolyFit", 93], ["RMI", 578]],
                            title="Table V")
        assert "Table V" in text
        assert "PolyFit" in text and "578" in text

    def test_format_table_ragged_rows(self):
        text = format_table(["a", "b"], [[1], [1, 2]])
        assert "1" in text

    def test_format_series(self):
        text = format_series("eps", [50, 100], {"PolyFit": [1.0, 2.0], "RMI": [3.0, 4.0]})
        assert "eps" in text and "PolyFit" in text and "RMI" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.0001234], [1234567.0], [1.5]])
        assert "e" in text  # scientific notation used for extremes

    def test_record_to_lines(self):
        record = ExperimentRecord(
            experiment_id="Figure 15(a)",
            description="COUNT response time vs eps_abs",
            parameters={"dataset": "tweet"},
            measurements={"PolyFit-2": "93 ns"},
            paper_claim="PolyFit is 1.5-6x faster than RMI/FITing-tree",
        )
        lines = record_to_lines(record)
        assert any("Figure 15(a)" in line for line in lines)
        assert any("dataset=tweet" in line for line in lines)
        assert any("PolyFit-2" in line for line in lines)
