"""Tests for the exact baselines (KCA, brute force, 2-D prefix grid)."""

import numpy as np
import pytest

from repro import Aggregate
from repro.baselines import BruteForceAggregator, KeyCumulativeArray, PrefixSumGrid2D
from repro.errors import DataError, QueryError


class TestKeyCumulativeArray:
    def test_build_sorts_input(self):
        kca = KeyCumulativeArray.build(np.array([3.0, 1.0, 2.0]), np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(kca.keys, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(kca.cumulative, [1.0, 3.0, 6.0])

    def test_count_mode_uses_unit_measures(self):
        kca = KeyCumulativeArray.build(np.array([1.0, 2.0]), np.array([9.0, 9.0]),
                                       aggregate=Aggregate.COUNT)
        np.testing.assert_array_equal(kca.cumulative, [1.0, 2.0])

    def test_evaluate_float_key(self):
        kca = KeyCumulativeArray.build(np.array([10.0, 20.0]), np.array([1.0, 2.0]))
        assert kca.evaluate(5.0) == 0.0
        assert kca.evaluate(15.0) == 1.0
        assert kca.evaluate(25.0) == 3.0

    def test_range_aggregate_inclusive(self):
        kca = KeyCumulativeArray.build(np.array([10.0, 20.0, 30.0]), np.array([1.0, 2.0, 3.0]))
        assert kca.range_aggregate(10.0, 30.0) == 6.0
        assert kca.range_aggregate(15.0, 25.0) == 2.0
        assert kca.range_aggregate(11.0, 19.0) == 0.0

    def test_range_aggregate_matches_brute_force(self):
        rng = np.random.default_rng(1)
        keys = rng.uniform(0, 100, size=300)
        measures = rng.uniform(0, 10, size=300)
        kca = KeyCumulativeArray.build(keys, measures)
        brute = BruteForceAggregator(keys, measures)
        for _ in range(50):
            low, high = np.sort(rng.uniform(0, 100, size=2))
            assert kca.range_aggregate(low, high) == pytest.approx(
                brute.range_aggregate(low, high, Aggregate.SUM)
            )

    def test_invalid_range(self):
        kca = KeyCumulativeArray.build(np.array([1.0]), np.array([1.0]))
        with pytest.raises(QueryError):
            kca.range_aggregate(2.0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            KeyCumulativeArray.build(np.array([]))

    def test_size_in_bytes(self):
        kca = KeyCumulativeArray.build(np.arange(100.0), np.ones(100))
        assert kca.size_in_bytes() == 8 * 200

    def test_from_cumulative(self):
        from repro.functions import build_cumulative_function

        cf = build_cumulative_function(np.array([1.0, 2.0]), np.array([3.0, 4.0]), Aggregate.SUM)
        kca = KeyCumulativeArray.from_cumulative(cf)
        assert kca.range_aggregate(1.0, 2.0) == 7.0


class TestBruteForceAggregator:
    @pytest.fixture()
    def data(self):
        rng = np.random.default_rng(2)
        keys = rng.uniform(0, 10, size=200)
        measures = rng.uniform(1, 5, size=200)
        return keys, measures

    def test_count(self, data):
        keys, measures = data
        brute = BruteForceAggregator(keys, measures)
        assert brute.range_aggregate(0, 10, Aggregate.COUNT) == 200

    def test_sum_min_max(self, data):
        keys, measures = data
        brute = BruteForceAggregator(keys, measures)
        mask = (keys >= 2) & (keys <= 7)
        assert brute.range_aggregate(2, 7, Aggregate.SUM) == pytest.approx(measures[mask].sum())
        assert brute.range_aggregate(2, 7, Aggregate.MAX) == pytest.approx(measures[mask].max())
        assert brute.range_aggregate(2, 7, Aggregate.MIN) == pytest.approx(measures[mask].min())

    def test_empty_range_semantics(self, data):
        keys, measures = data
        brute = BruteForceAggregator(keys, measures)
        assert brute.range_aggregate(100, 200, Aggregate.SUM) == 0.0
        assert brute.range_aggregate(100, 200, Aggregate.COUNT) == 0.0
        assert np.isnan(brute.range_aggregate(100, 200, Aggregate.MAX))

    def test_rectangle_aggregate(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        ys = np.array([0.0, 1.0, 2.0, 3.0])
        brute = BruteForceAggregator(xs, np.ones(4), second_keys=ys)
        assert brute.rectangle_aggregate(0.5, 2.5, 0.5, 2.5, Aggregate.COUNT) == 2.0

    def test_rectangle_requires_second_keys(self):
        brute = BruteForceAggregator(np.array([1.0]), np.array([1.0]))
        with pytest.raises(QueryError):
            brute.rectangle_aggregate(0, 1, 0, 1)

    def test_invalid_range(self, data):
        keys, measures = data
        brute = BruteForceAggregator(keys, measures)
        with pytest.raises(QueryError):
            brute.range_aggregate(5, 1, Aggregate.SUM)

    def test_empty_dataset_rejected(self):
        with pytest.raises(DataError):
            BruteForceAggregator(np.array([]))


class TestPrefixSumGrid2D:
    def test_exact_on_grid_aligned_queries(self):
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 1, size=2000)
        ys = rng.uniform(0, 1, size=2000)
        grid = PrefixSumGrid2D(xs, ys, resolution=10)
        # Whole-domain query is always exact.
        assert grid.rectangle_estimate(0.0, 1.0, 0.0, 1.0) == pytest.approx(2000.0)

    def test_estimate_close_to_truth(self):
        rng = np.random.default_rng(4)
        xs = rng.uniform(0, 1, size=5000)
        ys = rng.uniform(0, 1, size=5000)
        grid = PrefixSumGrid2D(xs, ys, resolution=64)
        brute = BruteForceAggregator(xs, np.ones(xs.size), second_keys=ys)
        for _ in range(20):
            x1, x2 = np.sort(rng.uniform(0, 1, size=2))
            y1, y2 = np.sort(rng.uniform(0, 1, size=2))
            exact = brute.rectangle_aggregate(x1, x2, y1, y2)
            estimate = grid.rectangle_estimate(x1, x2, y1, y2)
            # Error bounded by boundary-cell mass; generous tolerance.
            assert abs(estimate - exact) <= 0.05 * xs.size

    def test_invalid_rectangle(self):
        grid = PrefixSumGrid2D(np.array([0.0, 1.0]), np.array([0.0, 1.0]), resolution=2)
        with pytest.raises(QueryError):
            grid.rectangle_estimate(1.0, 0.0, 0.0, 1.0)

    def test_bad_resolution(self):
        with pytest.raises(DataError):
            PrefixSumGrid2D(np.array([0.0, 1.0]), np.array([0.0, 1.0]), resolution=1)

    def test_size_in_bytes(self):
        grid = PrefixSumGrid2D(np.array([0.0, 1.0]), np.array([0.0, 1.0]), resolution=4)
        assert grid.size_in_bytes() == grid._prefix.nbytes
