"""Tests for the B+tree substrate."""

import numpy as np
import pytest

from repro.baselines import BPlusTree
from repro.errors import DataError, QueryError


class TestConstruction:
    def test_bulk_load_from_sorted(self):
        keys = np.arange(0.0, 1000.0)
        tree = BPlusTree.from_sorted(keys, branching_factor=16)
        assert tree.size == 1000
        assert tree.height > 1

    def test_bulk_load_rejects_unsorted(self):
        with pytest.raises(DataError):
            BPlusTree.from_sorted(np.array([2.0, 1.0]))

    def test_bulk_load_rejects_empty(self):
        with pytest.raises(DataError):
            BPlusTree.from_sorted(np.array([]))

    def test_bulk_load_rejects_mismatched_values(self):
        with pytest.raises(DataError):
            BPlusTree.from_sorted(np.array([1.0, 2.0]), np.array([1.0]))

    def test_small_branching_factor_rejected(self):
        with pytest.raises(DataError):
            BPlusTree(branching_factor=2)

    def test_insert_grows_tree(self):
        tree = BPlusTree(branching_factor=4)
        for key in range(100):
            tree.insert(float(key), float(key) * 2)
        assert tree.size == 100
        assert tree.height > 1


class TestLookup:
    @pytest.fixture()
    def tree(self):
        keys = np.arange(0.0, 500.0)
        return BPlusTree.from_sorted(keys, keys * 10.0, branching_factor=8)

    def test_get_existing(self, tree):
        assert tree.get(42.0) == 420.0
        assert 42.0 in tree

    def test_get_missing(self, tree):
        assert tree.get(1234.5) is None
        assert tree.get(1234.5, default=-1.0) == -1.0
        assert 1234.5 not in tree

    def test_keys_sorted(self, tree):
        keys = tree.keys()
        assert keys == sorted(keys)
        assert len(keys) == 500

    def test_inserted_keys_retrievable(self):
        tree = BPlusTree(branching_factor=4)
        rng = np.random.default_rng(0)
        values = rng.permutation(200).astype(float)
        for key in values:
            tree.insert(key, key + 0.5)
        for key in values:
            assert tree.get(key) == key + 0.5
        assert tree.keys() == sorted(values.tolist())


class TestRangeQueries:
    @pytest.fixture()
    def tree(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.uniform(0, 100, size=400))
        values = rng.uniform(1, 10, size=400)
        return BPlusTree.from_sorted(keys, values, branching_factor=16), keys, values

    def test_items_in_range_matches_numpy(self, tree):
        btree, keys, values = tree
        rng = np.random.default_rng(2)
        for _ in range(30):
            low, high = np.sort(rng.uniform(0, 100, size=2))
            expected_keys = keys[(keys >= low) & (keys <= high)]
            got = [k for k, _ in btree.items_in_range(low, high)]
            np.testing.assert_allclose(got, expected_keys)

    def test_range_aggregates(self, tree):
        btree, keys, values = tree
        low, high = 20.0, 60.0
        mask = (keys >= low) & (keys <= high)
        assert btree.range_aggregate(low, high, "sum") == pytest.approx(values[mask].sum())
        assert btree.range_aggregate(low, high, "count") == mask.sum()
        assert btree.range_aggregate(low, high, "max") == pytest.approx(values[mask].max())
        assert btree.range_aggregate(low, high, "min") == pytest.approx(values[mask].min())

    def test_empty_range(self, tree):
        btree, _, _ = tree
        assert btree.range_aggregate(200.0, 300.0, "sum") == 0.0
        assert np.isnan(btree.range_aggregate(200.0, 300.0, "max"))

    def test_invalid_range(self, tree):
        btree, _, _ = tree
        with pytest.raises(QueryError):
            list(btree.items_in_range(5.0, 1.0))

    def test_unknown_aggregate(self, tree):
        btree, _, _ = tree
        with pytest.raises(QueryError):
            btree.range_aggregate(0.0, 10.0, "median")

    def test_size_in_bytes(self, tree):
        btree, _, _ = tree
        assert btree.size_in_bytes() > 0


class TestMixedWorkload:
    def test_behaves_like_sorted_dict(self):
        """Insert + bulk semantics match a reference dict-of-lists model."""
        rng = np.random.default_rng(3)
        tree = BPlusTree(branching_factor=6)
        reference: dict[float, float] = {}
        for _ in range(500):
            key = float(rng.integers(0, 200))
            value = float(rng.uniform())
            if key not in reference:
                reference[key] = value
                tree.insert(key, value)
        for key, value in reference.items():
            assert tree.get(key) == value
        low, high = 50.0, 150.0
        expected = sorted(k for k in reference if low <= k <= high)
        got = [k for k, _ in tree.items_in_range(low, high)]
        assert got == expected
