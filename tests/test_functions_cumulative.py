"""Tests for the key-cumulative function (CFsum / CFcount)."""

import numpy as np
import pytest

from repro import Aggregate
from repro.errors import DataError, QueryError
from repro.functions import build_cumulative_function


class TestBuildCumulativeFunction:
    def test_count_is_cumsum_of_ones(self):
        keys = np.array([1.0, 2.0, 3.0, 4.0])
        cf = build_cumulative_function(keys, aggregate=Aggregate.COUNT)
        np.testing.assert_array_equal(cf.values, [1.0, 2.0, 3.0, 4.0])

    def test_sum_accumulates_measures(self):
        keys = np.array([1.0, 2.0, 3.0])
        measures = np.array([5.0, 7.0, 1.0])
        cf = build_cumulative_function(keys, measures, Aggregate.SUM)
        np.testing.assert_array_equal(cf.values, [5.0, 12.0, 13.0])

    def test_unsorted_input_is_sorted(self):
        keys = np.array([3.0, 1.0, 2.0])
        measures = np.array([30.0, 10.0, 20.0])
        cf = build_cumulative_function(keys, measures, Aggregate.SUM)
        np.testing.assert_array_equal(cf.keys, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(cf.values, [10.0, 30.0, 60.0])

    def test_presorted_flag_validates(self):
        with pytest.raises(DataError):
            build_cumulative_function(
                np.array([3.0, 1.0]), np.array([1.0, 1.0]), presorted=True
            )

    def test_duplicate_keys_collapsed(self):
        keys = np.array([1.0, 1.0, 2.0])
        measures = np.array([2.0, 3.0, 4.0])
        cf = build_cumulative_function(keys, measures, Aggregate.SUM)
        np.testing.assert_array_equal(cf.keys, [1.0, 2.0])
        np.testing.assert_array_equal(cf.values, [5.0, 9.0])

    def test_negative_measures_rejected_for_sum(self):
        with pytest.raises(DataError):
            build_cumulative_function(
                np.array([1.0, 2.0]), np.array([1.0, -1.0]), Aggregate.SUM
            )

    def test_count_ignores_measures(self):
        keys = np.array([1.0, 2.0])
        cf = build_cumulative_function(keys, np.array([100.0, 200.0]), Aggregate.COUNT)
        np.testing.assert_array_equal(cf.values, [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            build_cumulative_function(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(DataError):
            build_cumulative_function(np.array([1.0, np.nan]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataError):
            build_cumulative_function(np.array([1.0, 2.0]), np.array([1.0]))

    def test_max_aggregate_rejected(self):
        with pytest.raises(DataError):
            build_cumulative_function(np.array([1.0]), aggregate=Aggregate.MAX)


class TestCumulativeEvaluation:
    @pytest.fixture()
    def cf(self):
        keys = np.array([10.0, 20.0, 30.0, 40.0])
        measures = np.array([1.0, 2.0, 3.0, 4.0])
        return build_cumulative_function(keys, measures, Aggregate.SUM)

    def test_evaluate_below_domain_is_zero(self, cf):
        assert cf.evaluate(5.0) == 0.0

    def test_evaluate_at_key_includes_it(self, cf):
        assert cf.evaluate(20.0) == 3.0

    def test_evaluate_between_keys(self, cf):
        assert cf.evaluate(25.0) == 3.0

    def test_evaluate_above_domain_is_total(self, cf):
        assert cf.evaluate(100.0) == cf.total == 10.0

    def test_evaluate_vectorized(self, cf):
        values = cf.evaluate(np.array([5.0, 20.0, 100.0]))
        np.testing.assert_array_equal(values, [0.0, 3.0, 10.0])

    def test_range_sum_inclusive_bounds(self, cf):
        # [20, 30] includes both records at 20 and 30.
        assert cf.range_sum(20.0, 30.0) == 5.0

    def test_range_sum_full_domain(self, cf):
        assert cf.range_sum(0.0, 100.0) == 10.0

    def test_range_sum_empty_region(self, cf):
        assert cf.range_sum(21.0, 29.0) == 0.0

    def test_range_sum_invalid_range(self, cf):
        with pytest.raises(QueryError):
            cf.range_sum(30.0, 20.0)

    def test_range_sum_matches_brute_force(self):
        rng = np.random.default_rng(5)
        keys = np.sort(rng.uniform(0, 100, size=200))
        measures = rng.uniform(0, 10, size=200)
        cf = build_cumulative_function(keys, measures, Aggregate.SUM)
        for _ in range(50):
            low, high = np.sort(rng.uniform(0, 100, size=2))
            expected = measures[(keys >= low) & (keys <= high)].sum()
            assert cf.range_sum(low, high) == pytest.approx(expected)

    def test_slice_points(self, cf):
        keys, values = cf.slice_points(1, 3)
        np.testing.assert_array_equal(keys, [20.0, 30.0])
        np.testing.assert_array_equal(values, [3.0, 6.0])

    def test_slice_points_bad_bounds(self, cf):
        with pytest.raises(QueryError):
            cf.slice_points(3, 1)

    def test_monotone_values(self):
        rng = np.random.default_rng(6)
        keys = np.sort(rng.uniform(0, 1, size=100))
        measures = rng.uniform(0, 5, size=100)
        cf = build_cumulative_function(keys, measures, Aggregate.SUM)
        assert np.all(np.diff(cf.values) >= 0)
