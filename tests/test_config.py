"""Tests for configuration dataclasses and enums."""

import pytest

from repro.config import (
    Aggregate,
    DEFAULT_DEGREE,
    FitConfig,
    GuaranteeKind,
    IndexConfig,
    QuadTreeConfig,
    SegmentationConfig,
)
from repro.errors import QueryError


class TestAggregate:
    def test_cumulative_flags(self):
        assert Aggregate.COUNT.is_cumulative
        assert Aggregate.SUM.is_cumulative
        assert not Aggregate.MAX.is_cumulative
        assert not Aggregate.MIN.is_cumulative

    def test_extremum_flags(self):
        assert Aggregate.MAX.is_extremum
        assert Aggregate.MIN.is_extremum
        assert not Aggregate.COUNT.is_extremum
        assert not Aggregate.SUM.is_extremum

    def test_string_values(self):
        assert Aggregate("count") is Aggregate.COUNT
        assert Aggregate("max") is Aggregate.MAX

    def test_guarantee_kinds(self):
        assert GuaranteeKind("absolute") is GuaranteeKind.ABSOLUTE
        assert GuaranteeKind("relative") is GuaranteeKind.RELATIVE


class TestFitConfig:
    def test_defaults(self):
        config = FitConfig()
        assert config.degree == DEFAULT_DEGREE
        assert config.solver == "auto"
        assert config.rescale is True

    def test_negative_degree_rejected(self):
        with pytest.raises(QueryError):
            FitConfig(degree=-1)

    def test_unknown_solver_rejected(self):
        with pytest.raises(QueryError):
            FitConfig(solver="simplex")

    def test_frozen(self):
        config = FitConfig()
        with pytest.raises(AttributeError):
            config.degree = 5  # type: ignore[misc]


class TestSegmentationConfig:
    def test_defaults(self):
        config = SegmentationConfig()
        assert config.method == "greedy-exponential"
        assert config.delta > 0

    def test_negative_delta_rejected(self):
        with pytest.raises(QueryError):
            SegmentationConfig(delta=-1.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(QueryError):
            SegmentationConfig(method="magic")

    def test_zero_delta_allowed(self):
        assert SegmentationConfig(delta=0.0).delta == 0.0

    def test_min_segment_points_validation(self):
        with pytest.raises(QueryError):
            SegmentationConfig(min_segment_points=0)


class TestIndexConfig:
    def test_defaults_compose(self):
        config = IndexConfig()
        assert config.fit.degree == DEFAULT_DEGREE
        assert config.fanout >= 2

    def test_small_fanout_rejected(self):
        with pytest.raises(QueryError):
            IndexConfig(fanout=1)


class TestQuadTreeConfig:
    def test_defaults(self):
        config = QuadTreeConfig()
        assert config.max_depth >= 1
        assert config.delta > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta": -1.0},
            {"max_depth": 0},
            {"min_cell_points": 0},
            {"degree": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(QueryError):
            QuadTreeConfig(**kwargs)
