"""Tests for CSV dataset loaders."""

import numpy as np
import pytest

from repro.datasets import load_keyed_csv, load_xy_csv
from repro.errors import DataError


@pytest.fixture()
def keyed_csv(tmp_path):
    path = tmp_path / "keyed.csv"
    path.write_text("key,measure\n3.0,30\n1.0,10\n2.0,20\n")
    return path


@pytest.fixture()
def xy_csv(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text("x,y\n1.5,2.5\n-3.0,4.0\n")
    return path


class TestLoadKeyedCsv:
    def test_loads_and_sorts(self, keyed_csv):
        keys, measures = load_keyed_csv(keyed_csv)
        np.testing.assert_array_equal(keys, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(measures, [10.0, 20.0, 30.0])

    def test_no_sort_preserves_file_order(self, keyed_csv):
        keys, _ = load_keyed_csv(keyed_csv, sort=False)
        np.testing.assert_array_equal(keys, [3.0, 1.0, 2.0])

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_keyed_csv(tmp_path / "nope.csv")

    def test_bad_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("key,measure\n1.0,oops\n")
        with pytest.raises(DataError):
            load_keyed_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("key,measure\n")
        with pytest.raises(DataError):
            load_keyed_csv(path)

    def test_no_header_and_custom_columns(self, tmp_path):
        path = tmp_path / "noheader.csv"
        path.write_text("9;1.0;100\n8;2.0;200\n")
        keys, measures = load_keyed_csv(
            path, key_column=1, measure_column=2, has_header=False, delimiter=";"
        )
        np.testing.assert_array_equal(keys, [1.0, 2.0])
        np.testing.assert_array_equal(measures, [100.0, 200.0])

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("key,measure\n1,1\n\n2,2\n")
        keys, _ = load_keyed_csv(path)
        assert keys.size == 2


class TestLoadXyCsv:
    def test_loads_points(self, xy_csv):
        xs, ys = load_xy_csv(xy_csv)
        np.testing.assert_array_equal(xs, [1.5, -3.0])
        np.testing.assert_array_equal(ys, [2.5, 4.0])

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_xy_csv(tmp_path / "missing.csv")

    def test_bad_column_index(self, xy_csv):
        with pytest.raises(DataError):
            load_xy_csv(xy_csv, y_column=7)

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("x,y\n")
        with pytest.raises(DataError):
            load_xy_csv(path)
