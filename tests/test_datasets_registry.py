"""Tests for the named dataset registry."""

import pytest

from repro.datasets import get_dataset, list_datasets
from repro.errors import DataError


class TestRegistry:
    def test_lists_the_paper_datasets(self):
        names = list_datasets()
        assert {"hki", "tweet", "osm"} <= set(names)

    def test_get_by_explicit_size(self):
        spec, (keys, measures) = get_dataset("tweet", n=2000, seed=1)
        assert spec.name == "tweet"
        assert spec.dimensions == 1
        assert keys.size == 2000
        assert measures.size == 2000

    def test_get_by_scale(self):
        spec, (keys, _) = get_dataset("hki", scale=0.005, seed=2)
        assert keys.size == max(1000, int(spec.full_size * 0.005))

    def test_case_insensitive(self):
        spec, _ = get_dataset("TWEET", n=1500)
        assert spec.name == "tweet"

    def test_two_dimensional_dataset(self):
        spec, (xs, ys) = get_dataset("osm", n=3000, seed=3)
        assert spec.dimensions == 2
        assert xs.size == ys.size == 3000

    def test_unknown_name(self):
        with pytest.raises(DataError):
            get_dataset("taxi")

    def test_n_and_scale_mutually_exclusive(self):
        with pytest.raises(DataError):
            get_dataset("tweet", n=10, scale=0.1)

    def test_nonpositive_scale(self):
        with pytest.raises(DataError):
            get_dataset("tweet", scale=0.0)

    def test_spec_metadata(self):
        spec, _ = get_dataset("osm", n=1000)
        assert spec.full_size == 100_000_000
        assert spec.default_aggregate == "count"
        assert "OpenStreetMap" in spec.description
