"""Tests for the zero-copy binary index codec.

Coverage: the generic array store (layout, alignment, zero-copy mmap
views), JSON <-> binary round-trip equality (arrays bit-identical, query
results matching after reload) for 1-D COUNT/SUM/MAX and 2-D COUNT/SUM
indexes, format auto-detection, and the corrupted-file error paths.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro import (
    Aggregate,
    PolyFit2DIndex,
    PolyFitIndex,
    RangeQuery,
    RangeQuery2D,
    load_index,
    load_index_binary,
    save_index,
    save_index_binary,
)
from repro.errors import SerializationError
from repro.index.codec import BINARY_MAGIC, read_array_store, write_array_store


def _range_bounds(keys, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(float(keys[0]), float(keys[-1]), size=(2, n))
    return np.minimum(a[0], a[1]), np.maximum(a[0], a[1])


class TestArrayStore:
    def test_round_trip_preserves_bytes_and_meta(self, tmp_path):
        path = tmp_path / "store.pfbin"
        arrays = {
            "floats": np.linspace(0.0, 1.0, 17),
            "matrix": np.arange(12, dtype=np.float64).reshape(3, 4),
            "codes": np.array([1, 5, 2**40], dtype=np.uint64),
            "mask": np.array([True, False, True]),
        }
        meta = {"kind": "unit-test", "nested": {"a": 1}}
        write_array_store(path, arrays, meta)
        for mmap in (True, False):
            got_meta, got = read_array_store(path, mmap=mmap)
            assert got_meta == meta
            assert set(got) == set(arrays)
            for name, array in arrays.items():
                assert got[name].dtype == array.dtype
                assert got[name].shape == array.shape
                assert got[name].tobytes() == array.tobytes()

    def test_mmap_views_are_read_only(self, tmp_path):
        path = tmp_path / "store.pfbin"
        write_array_store(path, {"x": np.zeros(4)}, {})
        _, arrays = read_array_store(path, mmap=True)
        with pytest.raises((ValueError, RuntimeError)):
            arrays["x"][0] = 1.0

    def test_blobs_are_aligned(self, tmp_path):
        path = tmp_path / "store.pfbin"
        write_array_store(path, {"a": np.zeros(3), "b": np.zeros(5)}, {})
        raw = path.read_bytes()
        (header_length,) = struct.unpack("<Q", raw[8:16])
        table = json.loads(raw[16: 16 + header_length])["arrays"]
        for entry in table.values():
            assert entry["offset"] % 64 == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pfbin"
        path.write_bytes(b"NOTANIDX" + b"\x00" * 64)
        with pytest.raises(SerializationError):
            read_array_store(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.pfbin"
        path.write_bytes(BINARY_MAGIC + struct.pack("<Q", 10_000) + b"{}")
        with pytest.raises(SerializationError):
            read_array_store(path)

    def test_truncated_blob_rejected(self, tmp_path):
        path = tmp_path / "cut.pfbin"
        write_array_store(path, {"x": np.zeros(1000)}, {})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 512])
        with pytest.raises(SerializationError):
            read_array_store(path)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "garbage.pfbin"
        garbage = b"{not json"
        path.write_bytes(BINARY_MAGIC + struct.pack("<Q", len(garbage)) + garbage)
        with pytest.raises(SerializationError):
            read_array_store(path)


class TestRoundTrip1D:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_count_queries_match(self, count_index, tweet_small, tmp_path, mmap):
        keys, _ = tweet_small
        path = tmp_path / "count.pfbin"
        save_index_binary(count_index, path)
        clone = load_index_binary(path, mmap=mmap)
        bounds = _range_bounds(keys, 2_000, seed=1)
        assert np.array_equal(
            clone.estimate_batch(*bounds), count_index.estimate_batch(*bounds)
        )
        assert clone.num_segments == count_index.num_segments
        assert clone.delta == count_index.delta
        assert clone.size_in_bytes() == count_index.size_in_bytes()

    def test_json_and_binary_clones_bit_identical(self, count_index, tweet_small, tmp_path):
        keys, _ = tweet_small
        json_clone = load_index(_save(count_index, tmp_path / "i.json"))
        binary_clone = load_index(_save(count_index, tmp_path / "i.pfbin"))
        a, b = json_clone._directory, binary_clone._directory  # noqa: SLF001
        for attr in ("keys", "lows", "highs", "errors"):
            assert getattr(a, attr).tobytes() == getattr(b, attr).tobytes()
        assert a.bank.coeffs.tobytes() == b.bank.coeffs.tobytes()
        fa = json_clone._cumulative  # noqa: SLF001
        fb = binary_clone._cumulative  # noqa: SLF001
        assert fa.keys.tobytes() == fb.keys.tobytes()
        assert fa.values.tobytes() == fb.values.tobytes()
        bounds = _range_bounds(keys, 2_000, seed=2)
        assert np.allclose(
            json_clone.estimate_batch(*bounds), binary_clone.estimate_batch(*bounds)
        )

    def test_sum_round_trip(self, tweet_small, tmp_path):
        keys, measures = tweet_small
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.SUM, delta=100.0)
        clone = load_index_binary(_save(index, tmp_path / "sum.pfbin"))
        assert clone.aggregate is Aggregate.SUM
        query = RangeQuery(float(keys[10]), float(keys[-10]), Aggregate.SUM)
        assert clone.query_value(query.low, query.high) == pytest.approx(
            index.query_value(query.low, query.high)
        )

    def test_max_round_trip_including_batch(self, max_index, hki_small, tmp_path):
        keys, _ = hki_small
        clone = load_index_binary(_save(max_index, tmp_path / "max.pfbin"))
        bounds = _range_bounds(keys, 1_000, seed=3)
        assert np.array_equal(
            clone.estimate_batch(*bounds),
            max_index.estimate_batch(*bounds),
            equal_nan=True,
        )


class TestRoundTrip2D:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_count_round_trip(self, count2d_index, osm_small, tmp_path, mmap):
        xs, ys = osm_small
        clone = load_index_binary(_save(count2d_index, tmp_path / "c2.pfbin"), mmap=mmap)
        rng = np.random.default_rng(4)
        ax = np.sort(rng.uniform(xs.min(), xs.max(), size=(2, 1_500)), axis=0)
        ay = np.sort(rng.uniform(ys.min(), ys.max(), size=(2, 1_500)), axis=0)
        bounds = (ax[0], ax[1], ay[0], ay[1])
        assert np.array_equal(
            clone.estimate_batch(*bounds), count2d_index.estimate_batch(*bounds)
        )
        # The pointer-tree scalar oracle round-trips too.
        query = RangeQuery2D(
            float(ax[0][0]), float(ax[1][0]), float(ay[0][0]), float(ay[1][0])
        )
        assert clone.query(query).value == count2d_index.query(query).value
        assert clone.exact(query) == count2d_index.exact(query)
        assert clone.size_in_bytes() == count2d_index.size_in_bytes()

    def test_json_and_binary_directories_bit_identical(self, count2d_index, tmp_path):
        json_clone = load_index(_save(count2d_index, tmp_path / "c2.json"))
        binary_clone = load_index(_save(count2d_index, tmp_path / "c2.pfbin"))
        a, b = json_clone.directory, binary_clone.directory
        for attr in (
            "keys",
            "lows",
            "highs",
            "errors",
            "exact_mask",
            "exact_ranges",
            "grid_x",
            "grid_y",
            "grid_cf",
        ):
            assert getattr(a, attr).tobytes() == getattr(b, attr).tobytes(), attr
        assert (
            a.surfaces.to_arrays()["coeffs"].tobytes()
            == b.surfaces.to_arrays()["coeffs"].tobytes()
        )

    def test_sum_with_weights_round_trip(self, osm_small, tmp_path):
        xs, ys = osm_small
        weights = np.random.default_rng(6).uniform(0.5, 2.0, xs.size)
        index = PolyFit2DIndex.build(
            xs, ys, measures=weights, aggregate=Aggregate.SUM, delta=500.0,
            grid_resolution=32,
        )
        clone = load_index_binary(_save(index, tmp_path / "s2.pfbin"))
        assert clone.aggregate is Aggregate.SUM
        query = RangeQuery2D(
            float(np.quantile(xs, 0.2)),
            float(np.quantile(xs, 0.8)),
            float(np.quantile(ys, 0.1)),
            float(np.quantile(ys, 0.9)),
            Aggregate.SUM,
        )
        assert clone.exact(query) == pytest.approx(index.exact(query))
        assert clone.estimate(query) == pytest.approx(index.estimate(query))


class TestExtremePayloadV2:
    """Format v2: the 2-D point-extreme payload survives the round trip."""

    @pytest.mark.parametrize("mmap", [True, False])
    def test_extremes_round_trip_bit_identical(self, count2d_index, osm_small, tmp_path, mmap):
        xs, ys = osm_small
        measures = np.random.default_rng(23).uniform(0.0, 50.0, xs.size)
        count2d_index.directory.attach_extremes(xs, ys, measures, Aggregate.MAX)
        try:
            clone = load_index_binary(
                _save(count2d_index, tmp_path / "ext.pfbin"), mmap=mmap
            )
            restored = clone.directory.point_extremes
            assert restored is not None
            assert restored.maximize is True
            original = count2d_index.directory.point_extremes
            for attr in ("xs", "ys", "measures", "leaf_extremes", "offsets"):
                assert (
                    getattr(restored, attr).tobytes()
                    == getattr(original, attr).tobytes()
                ), attr
            rng = np.random.default_rng(31)
            ax = np.sort(rng.uniform(xs.min(), xs.max(), size=(2, 500)), axis=0)
            ay = np.sort(rng.uniform(ys.min(), ys.max(), size=(2, 500)), axis=0)
            got = restored.range_extreme_batch(ax[0], ax[1], ay[0], ay[1])
            want = original.range_extreme_batch(ax[0], ax[1], ay[0], ay[1])
            assert np.array_equal(got, want, equal_nan=True)
        finally:
            count2d_index.directory.point_extremes = None

    def test_index_without_extremes_has_no_payload_after_load(
        self, count2d_index, tmp_path
    ):
        clone = load_index_binary(_save(count2d_index, tmp_path / "plain.pfbin"))
        assert clone.directory.point_extremes is None

    def test_v1_files_still_load(self, count_index, tmp_path):
        path = tmp_path / "v1.pfbin"
        save_index_binary(count_index, path)
        meta, arrays = read_array_store(path, mmap=False)
        meta["format_version"] = 1
        write_array_store(path, dict(arrays), meta)
        clone = load_index_binary(path)
        assert isinstance(clone, PolyFitIndex)


class TestFormatDispatch:
    def test_save_index_auto_picks_binary_by_suffix(self, count_index, tmp_path):
        path = tmp_path / "auto.pfbin"
        save_index(count_index, path)
        assert path.read_bytes()[: len(BINARY_MAGIC)] == BINARY_MAGIC

    def test_save_index_explicit_binary_any_suffix(self, count_index, tmp_path):
        path = tmp_path / "explicit.dat"
        save_index(count_index, path, format="binary")
        assert path.read_bytes()[: len(BINARY_MAGIC)] == BINARY_MAGIC
        assert isinstance(load_index(path), PolyFitIndex)

    def test_save_index_unknown_format_rejected(self, count_index, tmp_path):
        with pytest.raises(SerializationError):
            save_index(count_index, tmp_path / "x.bin", format="msgpack")

    def test_load_index_sniffs_json(self, count_index, tmp_path):
        path = tmp_path / "index.json"
        save_index(count_index, path, format="json")
        assert isinstance(load_index(path), PolyFitIndex)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_index(tmp_path / "missing.pfbin")

    def test_binary_load_of_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "alien.pfbin"
        write_array_store(path, {"x": np.zeros(2)}, {"format_version": 1, "kind": "alien"})
        with pytest.raises(SerializationError):
            load_index_binary(path)

    def test_binary_load_of_wrong_version_rejected(self, count_index, tmp_path):
        path = tmp_path / "old.pfbin"
        save_index_binary(count_index, path)
        meta, arrays = read_array_store(path, mmap=False)
        meta["format_version"] = 999
        write_array_store(path, dict(arrays), meta)
        with pytest.raises(SerializationError):
            load_index_binary(path)


def _save(index, path):
    save_index(index, path)
    return path
