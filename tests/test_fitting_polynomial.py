"""Tests for Polynomial1D / Polynomial2D evaluation, derivatives and extrema."""

import numpy as np
import pytest

from repro.errors import FittingError, QueryError
from repro.fitting import Polynomial1D, Polynomial2D


class TestPolynomial1DEvaluation:
    def test_constant(self):
        poly = Polynomial1D(np.array([3.0]))
        assert poly(0.0) == 3.0
        assert poly(123.0) == 3.0

    def test_linear(self):
        poly = Polynomial1D(np.array([1.0, 2.0]))  # 1 + 2k
        assert poly(0.0) == 1.0
        assert poly(3.0) == 7.0

    def test_quadratic_with_scaling(self):
        # P(k) = t^2 where t = (k - 10) / 5
        poly = Polynomial1D(np.array([0.0, 0.0, 1.0]), shift=10.0, scale=5.0)
        assert poly(10.0) == 0.0
        assert poly(15.0) == 1.0
        assert poly(0.0) == 4.0

    def test_vectorized_evaluation(self):
        poly = Polynomial1D(np.array([0.0, 1.0]))
        np.testing.assert_array_equal(poly(np.array([1.0, 2.0, 3.0])), [1.0, 2.0, 3.0])

    def test_scalar_output_type(self):
        poly = Polynomial1D(np.array([1.0, 1.0]))
        assert isinstance(poly(2.0), float)

    def test_degree_property(self):
        assert Polynomial1D(np.array([1.0, 2.0, 3.0])).degree == 2

    def test_rejects_empty_coeffs(self):
        with pytest.raises(FittingError):
            Polynomial1D(np.array([]))

    def test_rejects_nan_coeffs(self):
        with pytest.raises(FittingError):
            Polynomial1D(np.array([1.0, np.nan]))

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(FittingError):
            Polynomial1D(np.array([1.0]), scale=0.0)

    def test_num_parameters(self):
        assert Polynomial1D(np.array([1.0, 2.0, 3.0])).num_parameters == 5


class TestPolynomial1DDerivative:
    def test_derivative_of_constant_is_zero(self):
        deriv = Polynomial1D(np.array([7.0])).derivative()
        assert deriv(3.0) == 0.0

    def test_derivative_of_quadratic(self):
        # P(k) = 1 + 2k + 3k^2 -> P'(k) = 2 + 6k
        deriv = Polynomial1D(np.array([1.0, 2.0, 3.0])).derivative()
        assert deriv(0.0) == 2.0
        assert deriv(1.0) == 8.0

    def test_derivative_respects_scaling(self):
        # P(k) = t^2, t = k / 2 -> dP/dk = 2t * (1/2) = k / 2
        poly = Polynomial1D(np.array([0.0, 0.0, 1.0]), shift=0.0, scale=2.0)
        deriv = poly.derivative()
        assert deriv(2.0) == pytest.approx(1.0)
        assert deriv(4.0) == pytest.approx(2.0)

    def test_numerical_agreement(self):
        rng = np.random.default_rng(0)
        poly = Polynomial1D(rng.normal(size=5), shift=3.0, scale=2.0)
        deriv = poly.derivative()
        for k in rng.uniform(-10, 10, size=10):
            h = 1e-6
            numeric = (poly(k + h) - poly(k - h)) / (2 * h)
            assert deriv(k) == pytest.approx(numeric, rel=1e-4, abs=1e-6)


class TestPolynomial1DExtreme:
    def test_linear_maximum_at_endpoint(self):
        poly = Polynomial1D(np.array([0.0, 1.0]))  # increasing
        arg, value = poly.extreme_on(0.0, 10.0, maximize=True)
        assert arg == 10.0 and value == 10.0

    def test_linear_minimum_at_endpoint(self):
        poly = Polynomial1D(np.array([0.0, 1.0]))
        arg, value = poly.extreme_on(0.0, 10.0, maximize=False)
        assert arg == 0.0 and value == 0.0

    def test_parabola_interior_maximum(self):
        # P(k) = -(k - 5)^2 + 25 = -k^2 + 10k
        poly = Polynomial1D(np.array([0.0, 10.0, -1.0]))
        arg, value = poly.extreme_on(0.0, 10.0, maximize=True)
        assert arg == pytest.approx(5.0)
        assert value == pytest.approx(25.0)

    def test_parabola_clipped_interval(self):
        poly = Polynomial1D(np.array([0.0, 10.0, -1.0]))
        arg, value = poly.extreme_on(6.0, 10.0, maximize=True)
        assert arg == pytest.approx(6.0)
        assert value == pytest.approx(24.0)

    def test_cubic_extrema(self):
        # P(k) = k^3 - 3k has local max at k=-1 (value 2), local min at k=1 (-2)
        poly = Polynomial1D(np.array([0.0, -3.0, 0.0, 1.0]))
        _, max_value = poly.extreme_on(-2.0, 2.0, maximize=True)
        _, min_value = poly.extreme_on(-2.0, 2.0, maximize=False)
        assert max_value == pytest.approx(2.0)
        assert min_value == pytest.approx(-2.0)

    def test_constant_extreme(self):
        poly = Polynomial1D(np.array([4.0]))
        _, value = poly.extreme_on(0.0, 1.0)
        assert value == 4.0

    def test_invalid_interval(self):
        poly = Polynomial1D(np.array([1.0]))
        with pytest.raises(QueryError):
            poly.extreme_on(2.0, 1.0)

    def test_extreme_matches_dense_sampling(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            poly = Polynomial1D(rng.normal(size=4), shift=rng.uniform(-5, 5), scale=2.0)
            low, high = np.sort(rng.uniform(-10, 10, size=2))
            grid = np.linspace(low, high, 5001)
            _, maximum = poly.extreme_on(low, high, maximize=True)
            assert maximum >= np.max(poly(grid)) - 1e-6


class TestPolynomial1DSerialization:
    def test_round_trip(self):
        poly = Polynomial1D(np.array([1.0, -2.0, 0.5]), shift=3.0, scale=7.0)
        clone = Polynomial1D.from_dict(poly.to_dict())
        np.testing.assert_array_equal(clone.coeffs, poly.coeffs)
        assert clone.shift == poly.shift
        assert clone.scale == poly.scale
        assert clone(4.2) == poly(4.2)


class TestPolynomial2D:
    def test_term_count_matches_total_degree(self):
        # degree 2: terms 1, u, v, u^2, uv, v^2 -> 6 coefficients
        poly = Polynomial2D(np.zeros(6), degree=2)
        assert len(poly.terms) == 6

    def test_wrong_coefficient_count_rejected(self):
        with pytest.raises(FittingError):
            Polynomial2D(np.zeros(5), degree=2)

    def test_evaluation(self):
        # P(u, v) = 1 + 2u + 3v  (degree-1 terms order: 1, u, v)
        poly = Polynomial2D(np.array([1.0, 2.0, 3.0]), degree=1)
        assert poly(0.0, 0.0) == 1.0
        assert poly(1.0, 1.0) == 6.0

    def test_scaling(self):
        # P = s * t with s = u/2, t = v/4; degree 2 order: 1, u, v, u2, uv, v2
        poly = Polynomial2D(
            np.array([0.0, 0.0, 0.0, 0.0, 1.0, 0.0]),
            degree=2,
            scale_u=2.0,
            scale_v=4.0,
        )
        assert poly(2.0, 4.0) == pytest.approx(1.0)
        assert poly(4.0, 8.0) == pytest.approx(4.0)

    def test_vectorized(self):
        poly = Polynomial2D(np.array([0.0, 1.0, 1.0]), degree=1)
        values = poly(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        np.testing.assert_allclose(values, [4.0, 6.0])

    def test_round_trip_serialization(self):
        poly = Polynomial2D(np.arange(6.0), degree=2, shift_u=1.0, scale_u=2.0)
        clone = Polynomial2D.from_dict(poly.to_dict())
        assert clone(0.3, 0.7) == pytest.approx(poly(0.3, 0.7))

    def test_rejects_nan(self):
        with pytest.raises(FittingError):
            Polynomial2D(np.array([np.nan, 0.0, 0.0]), degree=1)

    def test_num_parameters(self):
        assert Polynomial2D(np.zeros(6), degree=2).num_parameters == 10
