"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.DataError,
    errors.FittingError,
    errors.SegmentationError,
    errors.QueryError,
    errors.GuaranteeNotSatisfiedError,
    errors.NotSupportedError,
    errors.SerializationError,
]


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error_class):
    assert issubclass(error_class, errors.ReproError)


@pytest.mark.parametrize("error_class", ALL_ERRORS)
def test_errors_carry_messages(error_class):
    with pytest.raises(errors.ReproError, match="boom"):
        raise error_class("boom")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_class_catches_subclasses():
    try:
        raise errors.QueryError("bad range")
    except errors.ReproError as caught:
        assert "bad range" in str(caught)
    else:  # pragma: no cover
        pytest.fail("ReproError did not catch QueryError")
