"""Write-ahead log and crash-recovery tests.

The durability claim is universally quantified and these tests quantify it:

* **replay bit-identity** — recovering a base (or checkpoint) plus its WAL
  reproduces the live index's answers bit-for-bit, for all four aggregates,
  1-D and 2-D, across compactions;
* **crash-point sweep** — a :class:`~repro.testing.faults.FaultyFile` kills
  the log write at *every byte offset* of an ingest run; recovery must then
  produce exactly the acknowledged prefix (acked inserts all present,
  unacked batch absent), never a torn or invented state;
* **truncation sweep** — chopping the log at every byte offset recovers
  some acknowledged prefix, never wrong data;
* **corruption** — a bit flip before the final frame is detected as
  corruption (typed :class:`~repro.errors.SerializationError`); a flip in
  the final frame is indistinguishable from a torn write and recovers the
  prefix without it.  Either way: a typed error or a correct prefix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Aggregate, CompactionPolicy, Guarantee, UpdatablePolyFitIndex
from repro.config import FitConfig, IndexConfig, SegmentationConfig
from repro.errors import SerializationError
from repro.stream import WriteAheadLog, scan_wal
from repro.stream.wal import RT_COMPACT, RT_INSERT1D, RT_SEAL
from repro.stream.updatable2d import UpdatablePolyFit2DIndex
from repro.testing.faults import CrashPoint, FaultyFile, flip_bit, truncate_file

FAST = IndexConfig(fit=FitConfig(degree=1), segmentation=SegmentationConfig(delta=25.0))
AGGREGATES = [Aggregate.COUNT, Aggregate.SUM, Aggregate.MAX, Aggregate.MIN]


def _records(n=400, seed=3):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.uniform(0.0, 1000.0, size=n))
    measures = rng.uniform(1.0, 50.0, size=n)
    return keys, measures


def _build(aggregate, keys, measures, **kwargs):
    return UpdatablePolyFitIndex.build(
        keys,
        None if aggregate is Aggregate.COUNT else measures,
        aggregate=aggregate,
        delta=25.0,
        config=FAST,
        **kwargs,
    )


def _probe(index, lows=None, highs=None):
    if lows is None:
        lows = np.array([0.0, 100.0, 400.0, 900.0, -np.inf])
        highs = np.array([1500.0, 350.0, 650.0, 950.0, np.inf])
    return index.exact_batch(lows, highs), index.estimate_batch(lows, highs)


def _same_answers(left, right):
    (le, la), (re, ra) = _probe(left), _probe(right)
    return np.array_equal(le, re, equal_nan=True) and np.array_equal(
        la, ra, equal_nan=True
    )


class TestWalFraming:
    def test_scan_round_trip(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append_insert(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
            wal.append_insert(np.array([5.0]))
            wal.append_compaction(1)
            wal.append_seal(epoch=1, buffer_size=0)
        scan = scan_wal(path)
        assert [r.kind for r in scan.records] == [
            RT_INSERT1D, RT_INSERT1D, RT_COMPACT, RT_SEAL
        ]
        assert np.array_equal(scan.records[0].keys, [1.0, 2.0])
        assert np.array_equal(scan.records[0].measures, [3.0, 4.0])
        assert scan.records[1].measures is None
        assert scan.records[2].epoch == 1
        assert scan.truncated_bytes == 0 and scan.damage is None

    def test_reopen_appends_after_valid_tail(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append_insert(np.array([1.0]))
        with WriteAheadLog(path) as wal:
            assert len(wal.scanned_records) == 1
            wal.append_insert(np.array([2.0]))
        assert len(scan_wal(path).records) == 2

    def test_bad_magic_is_typed(self, tmp_path):
        path = tmp_path / "not.wal"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 32)
        with pytest.raises(SerializationError, match="bad magic"):
            scan_wal(path)

    def test_group_commit_batches_syncs(self, tmp_path):
        path = tmp_path / "log.wal"
        handles = []

        def opener(p, mode):
            handle = FaultyFile(p, mode=mode)
            handles.append(handle)
            return handle

        with WriteAheadLog(path, sync_every=3, opener=opener) as wal:
            for _ in range(6):
                wal.append_insert(np.array([1.0]))
        # 1 creation sync + 2 group barriers + 1 close (nothing pending).
        assert handles[0].sync_calls == 3 + 1

    def test_failed_fsync_does_not_ack(self, tmp_path):
        path = tmp_path / "log.wal"
        keys, measures = _records(64)
        handles = []

        def opener(p, mode):
            handle = FaultyFile(p, mode=mode)
            handles.append(handle)
            return handle

        index = _build(Aggregate.COUNT, keys, measures, wal_path=path, wal_opener=opener)
        handles[0]._fail_sync = True  # the creation barrier passed; fail the next
        with pytest.raises(CrashPoint):
            index.insert(np.array([2000.0]))
        # The failed barrier meant the insert was never acknowledged (the
        # live index never applied it) — recovery may or may not surface the
        # in-flight record (classic WAL semantics), but never a torn state.
        assert index.buffer_size == 0
        handles[0]._fail_sync = False
        index.wal.close()
        base = _build(Aggregate.COUNT, keys, measures)
        recovered = UpdatablePolyFitIndex.recover(base.base, path)
        assert recovered.buffer_size in (0, 1)


class TestReplayBitIdentity:
    @pytest.mark.parametrize("aggregate", AGGREGATES)
    def test_recover_from_base_replays_everything(self, tmp_path, aggregate):
        keys, measures = _records()
        wal = tmp_path / "ingest.wal"
        live = _build(
            aggregate, keys[:200], measures[:200],
            policy=CompactionPolicy(max_buffer=64, auto=True),
            wal_path=wal,
        )
        for start in range(200, 400, 40):
            live.insert(
                keys[start:start + 40],
                None if aggregate is Aggregate.COUNT else measures[start:start + 40],
            )
        live.wal.close()
        base = _build(aggregate, keys[:200], measures[:200])
        recovered = UpdatablePolyFitIndex.recover(
            base.base, wal, policy=CompactionPolicy(max_buffer=64, auto=True)
        )
        assert recovered.epoch == live.epoch
        assert recovered.buffer_size == live.buffer_size
        assert _same_answers(recovered, live)

    @pytest.mark.parametrize("aggregate", AGGREGATES)
    def test_checkpoint_then_suffix_replay(self, tmp_path, aggregate):
        keys, measures = _records()
        wal = tmp_path / "ingest.wal"
        live = _build(aggregate, keys[:200], measures[:200], wal_path=wal)
        live.insert(keys[200:260], None if aggregate is Aggregate.COUNT else measures[200:260])
        checkpoint = live.checkpoint(tmp_path / "ckpt.pfbin")
        live.insert(keys[260:320], None if aggregate is Aggregate.COUNT else measures[260:320])
        live.compact()
        live.insert(keys[320:], None if aggregate is Aggregate.COUNT else measures[320:])
        live.wal.close()
        recovered = UpdatablePolyFitIndex.recover(checkpoint, wal, verify=True)
        assert recovered.epoch == live.epoch
        assert _same_answers(recovered, live)

    def test_recover_2d_checkpoint(self, tmp_path):
        rng = np.random.default_rng(7)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        ws = rng.uniform(1, 5, 3000)
        wal = tmp_path / "ingest2d.wal"
        live = UpdatablePolyFit2DIndex.build(
            xs, ys, ws, aggregate=Aggregate.SUM, delta=500.0, wal_path=wal
        )
        live.insert(np.array([5.0, 6.0]), np.array([7.0, 8.0]), np.array([2.0, 3.0]))
        checkpoint = live.checkpoint(tmp_path / "ckpt2d.pfbin")
        live.insert(np.array([50.0]), np.array([60.0]), np.array([4.0]))
        live.compact()
        live.wal.close()
        recovered = UpdatablePolyFit2DIndex.recover(checkpoint, wal)
        assert recovered.epoch == live.epoch
        lows = np.array([0.0, 40.0]); highs = np.array([100.0, 70.0])
        assert np.array_equal(
            recovered.exact_batch(lows, highs, lows, highs),
            live.exact_batch(lows, highs, lows, highs),
        )
        assert np.array_equal(
            recovered.estimate_batch(lows, highs, lows, highs),
            live.estimate_batch(lows, highs, lows, highs),
        )

    def test_fresh_wal_refuses_existing_records(self, tmp_path):
        keys, measures = _records(64)
        wal = tmp_path / "ingest.wal"
        index = _build(Aggregate.COUNT, keys, measures, wal_path=wal)
        index.insert(np.array([1.0]))
        index.wal.close()
        with pytest.raises(SerializationError, match="use recover"):
            _build(Aggregate.COUNT, keys, measures, wal_path=wal)

    def test_dimension_mismatch_is_typed(self, tmp_path):
        keys, measures = _records(64)
        wal = tmp_path / "ingest.wal"
        index = _build(Aggregate.COUNT, keys, measures, wal_path=wal)
        index.insert(np.array([1.0]))
        index.wal.close()
        rng = np.random.default_rng(1)
        base2d = UpdatablePolyFit2DIndex.build(
            rng.uniform(0, 10, 2000), rng.uniform(0, 10, 2000), None,
            aggregate=Aggregate.COUNT, delta=500.0,
        )
        base2d.compact()
        with pytest.raises(SerializationError):
            UpdatablePolyFit2DIndex.recover(base2d.base, wal)

    def test_wrong_checkpoint_for_log_is_typed(self, tmp_path):
        keys, measures = _records(128)
        wal = tmp_path / "ingest.wal"
        index = _build(Aggregate.COUNT, keys, measures, wal_path=wal)
        index.insert(np.array([1.0]))
        checkpoint = index.checkpoint(tmp_path / "ckpt.pfbin")
        index.wal.close()
        # A fresh, shorter log that cannot contain the checkpoint's prefix.
        other = tmp_path / "other.wal"
        WriteAheadLog(other).close()
        with pytest.raises(SerializationError, match="wrong log"):
            UpdatablePolyFitIndex.recover(checkpoint, other)


def _ingest_with_budget(tmp_path, aggregate, budget):
    """One WAL'd ingest run killed after ``budget`` log bytes.

    Returns ``(acked, wal_path, base_keys, base_measures)`` where ``acked``
    is the list of (keys, measures) batches whose insert() returned.
    """
    keys, measures = _records(160, seed=11)
    wal = tmp_path / f"crash-{budget}.wal"
    index = _build(
        aggregate, keys[:80], measures[:80],
        wal_path=wal,
        wal_opener=lambda p, mode: FaultyFile(p, mode=mode, fail_after=budget),
    )
    acked = []
    try:
        for start in range(80, 160, 16):
            batch_keys = keys[start:start + 16]
            batch_measures = (
                None if aggregate is Aggregate.COUNT else measures[start:start + 16]
            )
            index.insert(batch_keys, batch_measures)
            acked.append((batch_keys, batch_measures))
        crashed = False
    except CrashPoint:
        crashed = True
    return acked, crashed, wal, keys[:80], measures[:80]


class TestCrashPointSweep:
    @pytest.mark.parametrize("aggregate", [Aggregate.COUNT, Aggregate.SUM])
    def test_recovery_at_every_injection_site(self, tmp_path, aggregate):
        # Full run first to learn the log length, then kill at every offset
        # (stride keeps the sweep dense but affordable; offsets hit frame
        # headers, payload bytes and sync boundaries alike).
        acked, crashed, wal, base_keys, base_measures = _ingest_with_budget(
            tmp_path, aggregate, budget=10**9
        )
        assert not crashed
        total = wal.stat().st_size
        for budget in range(8, total, 7):
            acked, crashed, wal, base_keys, base_measures = _ingest_with_budget(
                tmp_path, aggregate, budget
            )
            base = _build(aggregate, base_keys, base_measures)
            recovered = UpdatablePolyFitIndex.recover(base.base, wal)
            # Exactly the acknowledged batches must be present: the WAL
            # syncs before insert() returns, so an acked batch survives any
            # later crash, and the torn batch was never acked.
            expected = _build(aggregate, base_keys, base_measures)
            for batch_keys, batch_measures in acked:
                expected.insert(batch_keys, batch_measures)
            assert _same_answers(recovered, expected), (aggregate, budget)

    def test_truncation_sweep_recovers_a_prefix(self, tmp_path):
        keys, measures = _records(96, seed=5)
        wal = tmp_path / "trunc.wal"
        index = _build(Aggregate.SUM, keys[:48], measures[:48], wal_path=wal)
        prefixes = [_build(Aggregate.SUM, keys[:48], measures[:48])]
        for start in range(48, 96, 12):
            index.insert(keys[start:start + 12], measures[start:start + 12])
            snapshot = _build(Aggregate.SUM, keys[:48], measures[:48])
            for stop in range(60, start + 13, 12):
                snapshot.insert(keys[stop - 12:stop], measures[stop - 12:stop])
            prefixes.append(snapshot)
        index.wal.close()
        total = wal.stat().st_size
        prefix_answers = [_probe(p) for p in prefixes]
        for cut in range(0, total, 5):
            clone = tmp_path / "cut.wal"
            clone.write_bytes(wal.read_bytes()[:cut])
            base = _build(Aggregate.SUM, keys[:48], measures[:48])
            recovered = UpdatablePolyFitIndex.recover(base.base, clone)
            got = _probe(recovered)
            assert any(
                np.array_equal(got[0], exact) and np.array_equal(got[1], approx)
                for exact, approx in prefix_answers
            ), f"truncation at {cut} produced a non-prefix state"

    def test_bit_flip_sweep_never_wrong_data(self, tmp_path):
        keys, measures = _records(96, seed=9)
        wal = tmp_path / "flip.wal"
        index = _build(Aggregate.COUNT, keys[:48], measures[:48], wal_path=wal)
        prefixes = [_build(Aggregate.COUNT, keys[:48], measures[:48])]
        for start in range(48, 96, 12):
            index.insert(keys[start:start + 12])
            snapshot = _build(Aggregate.COUNT, keys[:48], measures[:48])
            for stop in range(60, start + 13, 12):
                snapshot.insert(keys[stop - 12:stop])
            prefixes.append(snapshot)
        index.wal.close()
        pristine = wal.read_bytes()
        prefix_answers = [_probe(p) for p in prefixes]
        for offset in range(0, len(pristine), 11):
            clone = tmp_path / "flipped.wal"
            clone.write_bytes(pristine)
            flip_bit(clone, offset)
            base = _build(Aggregate.COUNT, keys[:48], measures[:48])
            try:
                recovered = UpdatablePolyFitIndex.recover(base.base, clone)
            except SerializationError:
                continue  # detected: a typed error, never silent corruption
            got = _probe(recovered)
            assert any(
                np.array_equal(got[0], exact) and np.array_equal(got[1], approx)
                for exact, approx in prefix_answers
            ), f"bit flip at {offset} produced a non-prefix state"

    def test_truncate_file_helper_matches_manual_cut(self, tmp_path):
        path = tmp_path / "t.wal"
        with WriteAheadLog(path) as wal:
            wal.append_insert(np.arange(4, dtype=float))
        before = path.read_bytes()
        truncate_file(path, len(before) - 5)
        assert path.read_bytes() == before[:-5]
