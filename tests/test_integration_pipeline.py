"""Integration tests: full dataset -> index -> workload -> guarantee pipeline.

These tests exercise the public API end to end the way the examples and
benchmarks do, and additionally cross-check PolyFit against every baseline on
the same workload.
"""

import numpy as np
import pytest

from repro import (
    Aggregate,
    Guarantee,
    PolyFitIndex,
    PolyFit2DIndex,
    QueryEngine,
    generate_range_queries,
    generate_rectangle_queries,
)
from repro.baselines import (
    AggregateRTree2D,
    AggregateSegmentTree,
    BruteForceAggregator,
    EntropyHistogram,
    FITingTree,
    KeyCumulativeArray,
    RecursiveModelIndex,
    SampledBTree,
)
from repro.datasets import get_dataset


class TestCountPipeline:
    """COUNT (single key) across PolyFit and all baselines on TWEET."""

    @pytest.fixture(scope="class")
    def setup(self):
        _, (keys, measures) = get_dataset("tweet", n=5000, seed=3)
        queries = generate_range_queries(keys, 100, Aggregate.COUNT, seed=4)
        brute = BruteForceAggregator(keys, measures)
        return keys, measures, queries, brute

    def test_polyfit_guarantee_holds_end_to_end(self, setup):
        keys, _, queries, brute = setup
        eps = 100.0
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                   guarantee=Guarantee.absolute(eps))
        engine = QueryEngine(index.query, index.exact, name="PolyFit-2")
        report = engine.accuracy(queries, Guarantee.absolute(eps))
        assert report.guarantee_violations == 0
        assert report.max_absolute_error <= eps + 1e-6

    def test_exact_methods_agree(self, setup):
        keys, measures, queries, brute = setup
        kca = KeyCumulativeArray.build(keys, aggregate=Aggregate.COUNT)
        tree = AggregateSegmentTree(keys, measures, Aggregate.COUNT)
        for query in queries[:40]:
            expected = brute.range_aggregate(query.low, query.high, Aggregate.COUNT)
            assert kca.range_aggregate(query.low, query.high) == pytest.approx(expected)
            assert tree.range_query(query.low, query.high) == pytest.approx(expected)

    def test_learned_baselines_with_guarantees(self, setup):
        keys, _, queries, brute = setup
        eps = 100.0
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
        fiting = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=eps / 2)
        for query in queries[:50]:
            exact = brute.range_aggregate(query.low, query.high, Aggregate.COUNT)
            assert abs(rmi.query(query, Guarantee.absolute(eps)).value - exact) <= eps + 1e-6
            assert abs(fiting.query(query, Guarantee.absolute(eps)).value - exact) <= eps + 1e-6

    def test_heuristics_reasonable(self, setup):
        keys, _, queries, brute = setup
        hist = EntropyHistogram(keys, num_buckets=256)
        stree = SampledBTree(keys, sample_fraction=0.2, seed=5)
        errors_hist, errors_stree = [], []
        for query in queries[:50]:
            exact = brute.range_aggregate(query.low, query.high, Aggregate.COUNT)
            if exact < 50:
                continue
            errors_hist.append(abs(hist.range_estimate(query.low, query.high) - exact) / exact)
            errors_stree.append(abs(stree.range_estimate(query.low, query.high) - exact) / exact)
        assert np.mean(errors_hist) < 0.25
        assert np.mean(errors_stree) < 0.25

    def test_polyfit_more_compact_than_raw_data(self, setup):
        keys, _, _, _ = setup
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=50.0)
        kca = KeyCumulativeArray.build(keys, aggregate=Aggregate.COUNT)
        assert index.size_in_bytes() < kca.size_in_bytes()


class TestMaxPipeline:
    """MAX (single key) on HKI: PolyFit vs aggregate tree vs brute force."""

    @pytest.fixture(scope="class")
    def setup(self):
        _, (keys, measures) = get_dataset("hki", n=5000, seed=6)
        queries = generate_range_queries(keys, 100, Aggregate.MAX, seed=7)
        return keys, measures, queries

    def test_polyfit_max_guarantee(self, setup):
        keys, measures, queries = setup
        eps = 100.0
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MAX,
                                   guarantee=Guarantee.absolute(eps))
        brute = BruteForceAggregator(keys, measures)
        for query in queries:
            exact = brute.range_aggregate(query.low, query.high, Aggregate.MAX)
            if np.isnan(exact):
                continue
            assert abs(index.query(query).value - exact) <= eps + 1e-6

    def test_aggregate_tree_is_exact(self, setup):
        keys, measures, queries = setup
        tree = AggregateSegmentTree(keys, measures, Aggregate.MAX)
        brute = BruteForceAggregator(keys, measures)
        for query in queries[:60]:
            exact = brute.range_aggregate(query.low, query.high, Aggregate.MAX)
            got = tree.range_query(query.low, query.high)
            if np.isnan(exact):
                assert np.isnan(got)
            else:
                assert got == pytest.approx(exact)


class TestTwoKeyPipeline:
    """COUNT (two keys) on OSM: PolyFit2D vs aR-tree vs brute force."""

    @pytest.fixture(scope="class")
    def setup(self):
        _, (xs, ys) = get_dataset("osm", n=6000, seed=8)
        queries = generate_rectangle_queries(xs, ys, 80, seed=9)
        brute = BruteForceAggregator(xs, np.ones(xs.size), second_keys=ys)
        return xs, ys, queries, brute

    def test_polyfit2d_guarantee(self, setup):
        xs, ys, queries, brute = setup
        eps = 1000.0
        index = PolyFit2DIndex.build(xs, ys, guarantee=Guarantee.absolute(eps),
                                     grid_resolution=48)
        for query in queries:
            exact = brute.rectangle_aggregate(query.x_low, query.x_high,
                                              query.y_low, query.y_high)
            assert abs(index.query(query).value - exact) <= eps + 1e-6

    def test_artree_exact(self, setup):
        xs, ys, queries, brute = setup
        tree = AggregateRTree2D(xs, ys)
        for query in queries[:40]:
            exact = brute.rectangle_aggregate(query.x_low, query.x_high,
                                              query.y_low, query.y_high)
            assert tree.rectangle_aggregate(query.x_low, query.x_high,
                                            query.y_low, query.y_high) == pytest.approx(exact)

    def test_relative_guarantee_pipeline(self, setup):
        xs, ys, queries, brute = setup
        index = PolyFit2DIndex.build(xs, ys, delta=250.0, grid_resolution=48)
        eps = 0.01
        for query in queries[:40]:
            result = index.query(query, Guarantee.relative(eps))
            exact = brute.rectangle_aggregate(query.x_low, query.x_high,
                                              query.y_low, query.y_high)
            if exact > 0:
                assert abs(result.value - exact) / exact <= eps + 1e-9


class TestCrossAggregateConsistency:
    def test_count_equals_sum_of_unit_measures(self):
        _, (keys, _) = get_dataset("tweet", n=3000, seed=10)
        unit = np.ones_like(keys)
        count_index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=25.0)
        sum_index = PolyFitIndex.build(keys, unit, aggregate=Aggregate.SUM, delta=25.0)
        queries = generate_range_queries(keys, 40, Aggregate.COUNT, seed=11)
        for query in queries:
            count_exact = count_index.exact(query)
            sum_exact = sum_index.exact(
                type(query)(query.low, query.high, Aggregate.SUM)
            )
            assert count_exact == pytest.approx(sum_exact)

    def test_min_is_negated_max_of_negated_measures(self):
        _, (keys, measures) = get_dataset("hki", n=3000, seed=12)
        brute = BruteForceAggregator(keys, measures)
        queries = generate_range_queries(keys, 30, Aggregate.MIN, seed=13)
        for query in queries:
            expected_min = brute.range_aggregate(query.low, query.high, Aggregate.MIN)
            negated = BruteForceAggregator(keys, -measures)
            expected_from_max = -negated.range_aggregate(query.low, query.high, Aggregate.MAX)
            if np.isnan(expected_min):
                assert np.isnan(expected_from_max)
            else:
                assert expected_min == pytest.approx(expected_from_max)
