"""Tracer and slow-query-log unit tests.

Sampling must be deterministic under a seed (the bench harness and the
serve tests rely on it), the ring buffer must stay bounded, and the clock
must be injectable so span timelines can be scripted exactly.
"""

import json

import pytest

from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Trace, Tracer


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTracer:
    def test_zero_rate_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.start("q") is None for _ in range(100))
        assert tracer.sampled_total == 0

    def test_full_rate_always_samples(self):
        tracer = Tracer(sample_rate=1.0)
        traces = [tracer.start("q") for _ in range(10)]
        assert all(t is not None for t in traces)
        assert tracer.sampled_total == 10
        assert [t.trace_id for t in traces] == list(range(1, 11))

    def test_seeded_sampling_is_deterministic(self):
        decisions_a = [
            Tracer(sample_rate=0.3, seed=42).start("q") is not None
            for _ in range(1)
        ]
        tracer_a = Tracer(sample_rate=0.3, seed=42)
        tracer_b = Tracer(sample_rate=0.3, seed=42)
        pattern_a = [tracer_a.start("q") is not None for _ in range(200)]
        pattern_b = [tracer_b.start("q") is not None for _ in range(200)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)
        assert decisions_a  # silence unused warning path

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=0.5, capacity=0)

    def test_ring_buffer_bounded(self):
        tracer = Tracer(sample_rate=1.0, capacity=5)
        for _ in range(12):
            tracer.finish(tracer.start("q"))
        traces = tracer.traces()
        assert len(traces) == 5
        assert tracer.finished_total == 12
        # Newest survive: ids 8..12.
        assert [t.trace_id for t in traces] == [8, 9, 10, 11, 12]

    def test_injected_clock_drives_timeline(self):
        clock = FakeClock(100.0)
        tracer = Tracer(sample_rate=1.0, clock=clock)
        trace = tracer.start("q", index="default")
        assert trace.started == 100.0
        clock.advance(0.010)
        with trace.span("pin"):
            clock.advance(0.005)
        clock.advance(0.001)
        trace.add_span("exec", trace.now(), trace.now() + 0.0)
        clock.advance(0.004)
        tracer.finish(trace)
        assert trace.ended == pytest.approx(100.020)
        assert trace.duration == pytest.approx(0.020)
        pin = trace.spans[0]
        assert pin.name == "pin"
        assert pin.start == pytest.approx(100.010)
        assert pin.duration == pytest.approx(0.005)

    def test_finish_none_is_noop(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.finish(None)
        assert tracer.finished_total == 0

    def test_payload_shape_and_jsonl_export(self):
        clock = FakeClock()
        tracer = Tracer(sample_rate=1.0, clock=clock)
        trace = tracer.start("q", guarantee="absolute")
        clock.advance(0.002)
        trace.add_span("queue_wait", 0.0, 0.002, batch_size=4)
        tracer.finish(trace)
        payload = trace.to_payload()
        assert payload["name"] == "q"
        assert payload["attrs"] == {"guarantee": "absolute"}
        assert payload["duration_ms"] == pytest.approx(2.0)
        span = payload["spans"][0]
        assert span["name"] == "queue_wait"
        assert span["attrs"] == {"batch_size": 4}
        lines = tracer.export_jsonl().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["trace_id"] == trace.trace_id

    def test_dump_writes_jsonl_file(self, tmp_path):
        tracer = Tracer(sample_rate=1.0)
        tracer.finish(tracer.start("q"))
        path = tmp_path / "traces.jsonl"
        written = tracer.dump(str(path))
        assert written == 1
        assert json.loads(path.read_text().strip())["name"] == "q"

    def test_spans_threadsafe_add(self):
        import threading

        trace = Trace(1, "q", clock=lambda: 0.0)

        def add_many():
            for i in range(300):
                trace.add_span("s", 0.0, 0.001)

        threads = [threading.Thread(target=add_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.spans) == 1200


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=100.0, clock=lambda: 5.0)
        assert log.record("/query", 0.050) is False
        assert log.record("/query", 0.150, status=200) is True
        assert log.total == 1
        entry = log.entries()[0]
        assert entry["endpoint"] == "/query"
        assert entry["duration_ms"] == pytest.approx(150.0)
        assert entry["status"] == 200
        assert entry["ts"] == 5.0

    def test_zero_threshold_records_everything(self):
        log = SlowQueryLog(threshold_ms=0.0)
        assert log.record("/query_batch", 0.0001) is True

    def test_capacity_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for i in range(7):
            log.record(f"/q{i}", 1.0)
        entries = log.entries()
        assert len(entries) == 3
        assert [e["endpoint"] for e in entries] == ["/q4", "/q5", "/q6"]
        assert log.total == 7

    def test_detail_attached(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record("/query", 1.0, detail={"epoch": 3})
        assert log.entries()[0]["detail"] == {"epoch": 3}

    def test_as_dict_and_jsonl(self):
        log = SlowQueryLog(threshold_ms=10.0)
        log.record("/query", 1.0)
        payload = log.as_dict()
        assert payload["threshold_ms"] == 10.0
        assert payload["total"] == 1
        assert len(payload["entries"]) == 1
        assert json.loads(log.export_jsonl().strip())["endpoint"] == "/query"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=1.0, capacity=0)
