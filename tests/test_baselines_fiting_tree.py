"""Tests for the FITing-tree baseline (shrinking-cone segmentation)."""

import numpy as np
import pytest

from repro import Aggregate, Guarantee, RangeQuery, generate_range_queries
from repro.baselines import FITingTree
from repro.baselines.fiting_tree import shrinking_cone_segmentation
from repro.errors import DataError, NotSupportedError


class TestShrinkingConeSegmentation:
    def test_segments_within_budget(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.uniform(0, 100, size=400))
        values = np.cumsum(rng.uniform(0, 3, size=400))
        budget = 5.0
        segments = shrinking_cone_segmentation(keys, values, budget)
        assert all(segment.max_error <= budget + 1e-9 for segment in segments)

    def test_segments_cover_domain_in_order(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.uniform(0, 10, size=200))
        values = np.cumsum(rng.uniform(0, 1, size=200))
        segments = shrinking_cone_segmentation(keys, values, 2.0)
        assert segments[0].key_low == keys[0]
        assert segments[-1].key_high == keys[-1]
        for previous, current in zip(segments, segments[1:]):
            assert current.key_low > previous.key_low

    def test_perfectly_linear_data_single_segment(self):
        keys = np.linspace(0, 100, 500)
        values = 2.0 * keys + 3.0
        segments = shrinking_cone_segmentation(keys, values, 0.1)
        assert len(segments) == 1

    def test_smaller_budget_more_segments(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.uniform(0, 50, size=300))
        values = np.cumsum(rng.uniform(0, 2, size=300))
        loose = shrinking_cone_segmentation(keys, values, 20.0)
        tight = shrinking_cone_segmentation(keys, values, 1.0)
        assert len(tight) >= len(loose)

    def test_rejects_unsorted(self):
        with pytest.raises(DataError):
            shrinking_cone_segmentation(np.array([2.0, 1.0]), np.array([1.0, 2.0]), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            shrinking_cone_segmentation(np.array([]), np.array([]), 1.0)

    def test_rejects_negative_budget(self):
        with pytest.raises(DataError):
            shrinking_cone_segmentation(np.array([1.0]), np.array([1.0]), -1.0)

    def test_single_point(self):
        segments = shrinking_cone_segmentation(np.array([1.0]), np.array([5.0]), 1.0)
        assert len(segments) == 1
        assert segments[0].predict(1.0) == 5.0


class TestFITingTree:
    def test_build_and_segment_count(self, tweet_small):
        keys, _ = tweet_small
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=50.0)
        assert tree.num_segments >= 1
        assert tree.error_budget == 50.0

    def test_count_absolute_guarantee(self, tweet_small):
        keys, _ = tweet_small
        eps = 100.0
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=eps / 2)
        queries = generate_range_queries(keys, 60, Aggregate.COUNT, seed=1)
        for query in queries:
            result = tree.query(query, Guarantee.absolute(eps))
            exact = tree.exact(query)
            assert abs(result.value - exact) <= eps + 1e-6

    def test_relative_guarantee_with_fallback(self, tweet_small):
        keys, _ = tweet_small
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=50.0)
        eps = 0.01
        queries = generate_range_queries(keys, 60, Aggregate.COUNT, seed=2)
        for query in queries:
            result = tree.query(query, Guarantee.relative(eps))
            exact = tree.exact(query)
            if exact > 0:
                assert abs(result.value - exact) / exact <= eps + 1e-9

    def test_sum_aggregate(self, tweet_small):
        keys, measures = tweet_small
        tree = FITingTree.build(keys, measures, aggregate=Aggregate.SUM, error_budget=100.0)
        query = RangeQuery(float(keys[50]), float(keys[-50]), Aggregate.SUM)
        assert abs(tree.estimate(query) - tree.exact(query)) <= 2 * 100.0 + 1e-6

    def test_more_segments_than_polyfit_with_same_budget(self, tweet_small, count_index):
        """Linear segments cannot beat degree-2 polynomials on segment count."""
        keys, _ = tweet_small
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT,
                                error_budget=count_index.delta)
        assert tree.num_segments >= count_index.num_segments

    def test_rejects_max(self, tweet_small):
        keys, measures = tweet_small
        with pytest.raises(NotSupportedError):
            FITingTree.build(keys, measures, aggregate=Aggregate.MAX)

    def test_aggregate_mismatch(self, tweet_small):
        keys, _ = tweet_small
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT)
        with pytest.raises(NotSupportedError):
            tree.estimate(RangeQuery(0.0, 1.0, Aggregate.SUM))

    def test_size_in_bytes(self, tweet_small):
        keys, _ = tweet_small
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=50.0)
        assert tree.size_in_bytes() == 8 * 4 * tree.num_segments

    def test_query_without_guarantee(self, tweet_small):
        keys, _ = tweet_small
        tree = FITingTree.build(keys, aggregate=Aggregate.COUNT, error_budget=50.0)
        result = tree.query(RangeQuery(float(keys[0]), float(keys[-1]), Aggregate.COUNT))
        assert result.error_bound == pytest.approx(100.0)
