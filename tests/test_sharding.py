"""Tests for the sharded parallel batch execution layer.

The contract under test: for every executor and shard count, the sharded
engine's answers are *bit-identical* to the serial batch path (chunk
evaluation is element-independent in all batch kernels), results come back
in input order, and small workloads fall back to the serial path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Aggregate, Guarantee, QueryEngine, ShardedQueryEngine
from repro.errors import QueryError
from repro.index.codec import save_index_binary
from repro.queries import generate_range_queries, queries_to_bounds
from repro.queries.sharding import shard_slices

SHARD_COUNTS = [1, 2, 7]
EXECUTORS = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def count_bounds(tweet_small):
    keys, _ = tweet_small
    rng = np.random.default_rng(42)
    a = rng.uniform(float(keys[0]), float(keys[-1]), size=(2, 5_000))
    return np.minimum(a[0], a[1]), np.maximum(a[0], a[1])


@pytest.fixture(scope="module")
def rect_bounds(osm_small):
    xs, ys = osm_small
    rng = np.random.default_rng(43)
    ax = rng.uniform(xs.min(), xs.max(), size=(2, 3_000))
    ay = rng.uniform(ys.min(), ys.max(), size=(2, 3_000))
    return (
        np.minimum(ax[0], ax[1]),
        np.maximum(ax[0], ax[1]),
        np.minimum(ay[0], ay[1]),
        np.maximum(ay[0], ay[1]),
    )


class TestShardSlices:
    def test_covers_range_in_order(self):
        for total in (0, 1, 5, 100, 101):
            for shards in (1, 2, 7, 200):
                slices = shard_slices(total, shards)
                flat = [i for start, stop in slices for i in range(start, stop)]
                assert flat == list(range(total))

    def test_balanced(self):
        sizes = [stop - start for start, stop in shard_slices(100, 7)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100

    def test_fewer_chunks_than_shards_for_tiny_workloads(self):
        assert len(shard_slices(3, 7)) == 3

    def test_rejects_bad_shard_count(self):
        with pytest.raises(QueryError):
            shard_slices(10, 0)


class TestShardedEquivalence1D:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_estimate_bit_identical(self, count_index, count_bounds, executor, num_shards):
        serial = count_index.estimate_batch(*count_bounds)
        with ShardedQueryEngine(
            index=count_index,
            num_shards=num_shards,
            executor=executor,
            min_queries_per_shard=1,
        ) as engine:
            sharded = engine.estimate_batch(*count_bounds)
        assert sharded.dtype == serial.dtype
        assert np.array_equal(sharded, serial)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_exact_bit_identical(self, count_index, count_bounds, executor):
        serial = count_index.exact_batch(*count_bounds)
        with ShardedQueryEngine(
            index=count_index, num_shards=7, executor=executor, min_queries_per_shard=1
        ) as engine:
            assert np.array_equal(engine.exact_batch(*count_bounds), serial)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_query_batch_with_guarantee(self, count_index, count_bounds, num_shards):
        guarantee = Guarantee.relative(0.5)
        serial = count_index.query_batch(*count_bounds, guarantee)
        with ShardedQueryEngine(
            index=count_index,
            num_shards=num_shards,
            executor="thread",
            min_queries_per_shard=1,
        ) as engine:
            sharded = engine.query_batch(*count_bounds, guarantee=guarantee)
        assert np.array_equal(sharded.values, serial.values)
        assert np.array_equal(sharded.guaranteed, serial.guaranteed)
        assert np.array_equal(sharded.exact_fallback, serial.exact_fallback)
        assert np.array_equal(sharded.error_bounds, serial.error_bounds)

    def test_max_index_extremes(self, max_index, hki_small):
        keys, _ = hki_small
        rng = np.random.default_rng(5)
        a = rng.uniform(float(keys[0]), float(keys[-1]), size=(2, 2_000))
        lows, highs = np.minimum(a[0], a[1]), np.maximum(a[0], a[1])
        serial = max_index.estimate_batch(lows, highs)
        with ShardedQueryEngine(
            index=max_index, num_shards=7, executor="thread", min_queries_per_shard=1
        ) as engine:
            assert np.array_equal(engine.estimate_batch(lows, highs), serial, equal_nan=True)

    def test_workload_smaller_than_shards(self, count_index, count_bounds):
        lows, highs = count_bounds[0][:3], count_bounds[1][:3]
        serial = count_index.estimate_batch(lows, highs)
        with ShardedQueryEngine(
            index=count_index, num_shards=7, executor="thread", min_queries_per_shard=1
        ) as engine:
            assert np.array_equal(engine.estimate_batch(lows, highs), serial)

    def test_small_workload_serial_fallback_threshold(self, count_index, count_bounds):
        # Default threshold: 5k queries over 7 shards stays serial (no pool).
        engine = ShardedQueryEngine(index=count_index, num_shards=7, executor="thread")
        serial = count_index.estimate_batch(*count_bounds)
        assert np.array_equal(engine.estimate_batch(*count_bounds), serial)
        assert engine._pool is None  # noqa: SLF001 - asserting the fallback took effect
        engine.close()


class TestShardedEquivalence2D:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("num_shards", [2, 7])
    def test_estimate_bit_identical(self, count2d_index, rect_bounds, executor, num_shards):
        serial = count2d_index.estimate_batch(*rect_bounds)
        with ShardedQueryEngine(
            index=count2d_index,
            num_shards=num_shards,
            executor=executor,
            min_queries_per_shard=1,
        ) as engine:
            assert np.array_equal(engine.estimate_batch(*rect_bounds), serial)

    def test_process_workers_from_mmap_path(self, count2d_index, rect_bounds, tmp_path):
        path = tmp_path / "index2d.pfbin"
        save_index_binary(count2d_index, path)
        serial = count2d_index.estimate_batch(*rect_bounds)
        with ShardedQueryEngine.from_path(
            path, num_shards=2, executor="process", min_queries_per_shard=1
        ) as engine:
            assert np.array_equal(engine.estimate_batch(*rect_bounds), serial)


class TestShardedProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        num_queries=st.integers(min_value=1, max_value=300),
        num_shards=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_thread_sharding_matches_serial(
        self, count_index, tweet_small, num_queries, num_shards, seed
    ):
        keys, _ = tweet_small
        rng = np.random.default_rng(seed)
        a = rng.uniform(float(keys[0]), float(keys[-1]), size=(2, num_queries))
        lows, highs = np.minimum(a[0], a[1]), np.maximum(a[0], a[1])
        serial = count_index.estimate_batch(lows, highs)
        with ShardedQueryEngine(
            index=count_index,
            num_shards=num_shards,
            executor="thread",
            min_queries_per_shard=1,
        ) as engine:
            assert np.array_equal(engine.estimate_batch(lows, highs), serial)


class TestEngineIntegration:
    def test_for_index_num_shards_matches_serial(self, count_index, tweet_small):
        keys, _ = tweet_small
        queries = generate_range_queries(keys, 200, Aggregate.COUNT, seed=9)
        baseline = QueryEngine.for_index(count_index, "serial")
        sharded = QueryEngine.for_index(
            count_index, "sharded", num_shards=4, executor="thread"
        )
        try:
            expected = baseline.run(queries)
            got = sharded.run(queries)
            assert [r.value for r, _ in got] == [r.value for r, _ in expected]
            assert [e for _, e in got] == [e for _, e in expected]
        finally:
            sharded.close()
            baseline.close()

    def test_run_batch_raw_through_shards(self, count_index, count_bounds):
        engine = QueryEngine.for_index(count_index, "sharded", num_shards=3)
        try:
            raw = engine.run_batch_raw(_bounds_to_queries(count_bounds))
            assert np.array_equal(
                raw.values, count_index.query_batch(*count_bounds).values
            )
        finally:
            engine.close()


def _bounds_to_queries(bounds):
    from repro import RangeQuery

    lows, highs = bounds
    return [
        RangeQuery(float(low), float(high), Aggregate.COUNT)
        for low, high in zip(lows, highs)
    ]


class TestValidation:
    def test_unknown_executor_rejected(self, count_index):
        with pytest.raises(QueryError):
            ShardedQueryEngine(index=count_index, executor="gpu")

    def test_missing_index_rejected(self):
        with pytest.raises(QueryError):
            ShardedQueryEngine()

    def test_bad_shard_count_rejected(self, count_index):
        with pytest.raises(QueryError):
            ShardedQueryEngine(index=count_index, num_shards=0)

    def test_mismatched_bounds_rejected(self, count_index):
        engine = ShardedQueryEngine(index=count_index, num_shards=2)
        with pytest.raises(QueryError):
            engine.estimate_batch(np.zeros(3), np.zeros(4))

    def test_queries_to_bounds_round_trip(self, count_bounds):
        queries = _bounds_to_queries(count_bounds)
        lows, highs = queries_to_bounds(queries)
        assert np.array_equal(lows, count_bounds[0])
        assert np.array_equal(highs, count_bounds[1])
