"""Tests for the key-measure step function (DFmax / DFmin)."""

import numpy as np
import pytest

from repro import Aggregate
from repro.errors import DataError, QueryError
from repro.functions import build_key_measure_function


class TestBuildKeyMeasureFunction:
    def test_basic_construction(self):
        keys = np.array([1.0, 2.0, 3.0])
        measures = np.array([5.0, 2.0, 9.0])
        df = build_key_measure_function(keys, measures, Aggregate.MAX)
        np.testing.assert_array_equal(df.keys, keys)
        np.testing.assert_array_equal(df.measures, measures)

    def test_unsorted_input_sorted(self):
        keys = np.array([3.0, 1.0, 2.0])
        measures = np.array([9.0, 5.0, 2.0])
        df = build_key_measure_function(keys, measures, Aggregate.MAX)
        np.testing.assert_array_equal(df.keys, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(df.measures, [5.0, 2.0, 9.0])

    def test_duplicates_collapsed_to_max(self):
        keys = np.array([1.0, 1.0, 2.0])
        measures = np.array([3.0, 7.0, 5.0])
        df = build_key_measure_function(keys, measures, Aggregate.MAX)
        np.testing.assert_array_equal(df.measures, [7.0, 5.0])

    def test_duplicates_collapsed_to_min(self):
        keys = np.array([1.0, 1.0, 2.0])
        measures = np.array([3.0, 7.0, 5.0])
        df = build_key_measure_function(keys, measures, Aggregate.MIN)
        np.testing.assert_array_equal(df.measures, [3.0, 5.0])

    def test_count_rejected(self):
        with pytest.raises(DataError):
            build_key_measure_function(np.array([1.0]), np.array([1.0]), Aggregate.COUNT)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            build_key_measure_function(np.array([]), np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(DataError):
            build_key_measure_function(np.array([1.0]), np.array([np.nan]))

    def test_mismatched_lengths(self):
        with pytest.raises(DataError):
            build_key_measure_function(np.array([1.0, 2.0]), np.array([1.0]))

    def test_presorted_validation(self):
        with pytest.raises(DataError):
            build_key_measure_function(
                np.array([2.0, 1.0]), np.array([1.0, 1.0]), presorted=True
            )


class TestKeyMeasureEvaluation:
    @pytest.fixture()
    def df(self):
        keys = np.array([10.0, 20.0, 30.0])
        measures = np.array([5.0, 9.0, 2.0])
        return build_key_measure_function(keys, measures, Aggregate.MAX)

    def test_step_evaluation(self, df):
        assert df.evaluate(10.0) == 5.0
        assert df.evaluate(15.0) == 5.0
        assert df.evaluate(25.0) == 9.0
        assert df.evaluate(100.0) == 2.0

    def test_before_first_key_is_zero(self, df):
        assert df.evaluate(5.0) == 0.0

    def test_range_extreme_max(self, df):
        assert df.range_extreme(10.0, 30.0) == 9.0
        assert df.range_extreme(25.0, 35.0) == 2.0

    def test_range_extreme_min(self):
        keys = np.array([1.0, 2.0, 3.0])
        measures = np.array([5.0, 1.0, 9.0])
        df = build_key_measure_function(keys, measures, Aggregate.MIN)
        assert df.range_extreme(1.0, 3.0) == 1.0
        assert df.range_extreme(2.5, 3.5) == 9.0

    def test_range_extreme_empty_is_nan(self, df):
        assert np.isnan(df.range_extreme(11.0, 19.0))

    def test_range_extreme_invalid(self, df):
        with pytest.raises(QueryError):
            df.range_extreme(5.0, 1.0)

    def test_range_extreme_matches_brute_force(self):
        rng = np.random.default_rng(7)
        keys = np.sort(rng.uniform(0, 100, size=300))
        measures = rng.uniform(0, 50, size=300)
        df = build_key_measure_function(keys, measures, Aggregate.MAX)
        for _ in range(50):
            low, high = np.sort(rng.choice(keys, size=2, replace=False))
            expected = measures[(keys >= low) & (keys <= high)].max()
            assert df.range_extreme(low, high) == pytest.approx(expected)

    def test_slice_points(self, df):
        keys, measures = df.slice_points(0, 2)
        np.testing.assert_array_equal(keys, [10.0, 20.0])
        np.testing.assert_array_equal(measures, [5.0, 9.0])

    def test_slice_points_bad_bounds(self, df):
        with pytest.raises(QueryError):
            df.slice_points(2, 5)
