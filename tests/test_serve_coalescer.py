"""Coalescer and EngineHost tests: bit-identity, edge cases, epochs.

No pytest-asyncio dependency: each test drives its own event loop through
``asyncio.run``.  The correctness bar mirrors the rest of the repo — served
answers must be *bit-identical* to calling ``query_batch`` directly.
"""

import asyncio

import numpy as np
import pytest

from repro import (
    Aggregate,
    CompactionPolicy,
    Guarantee,
    PolyFitIndex,
    PolyFit2DIndex,
    UpdatablePolyFitIndex,
)
from repro.errors import NotSupportedError, QueryError, ServerOverloadedError
from repro.serve import Coalescer, EngineHost

DELTA = 50.0


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return np.sort(rng.uniform(0.0, 1000.0, size=30_000))


@pytest.fixture(scope="module")
def index(keys):
    return PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=DELTA)


def make_bounds(count, seed=1, span=(0.0, 1000.0)):
    rng = np.random.default_rng(seed)
    draws = rng.uniform(span[0], span[1], size=(2, count))
    lows, highs = np.minimum(draws[0], draws[1]), np.maximum(draws[0], draws[1])
    return lows, highs


def gather_answers(coalescer, lows, highs, guarantee=None, **submit_kwargs):
    async def run():
        futures = [
            coalescer.submit((low, high), guarantee, **submit_kwargs)
            for low, high in zip(lows, highs)
        ]
        answers = await asyncio.gather(*futures)
        await coalescer.stop()
        return answers

    return asyncio.run(run())


def answers_to_columns(answers):
    values = np.array([a.value for a in answers], dtype=np.float64)
    guaranteed = np.array([a.guaranteed for a in answers], dtype=bool)
    fallback = np.array([a.exact_fallback for a in answers], dtype=bool)
    bounds = np.array(
        [np.nan if a.error_bound is None else a.error_bound for a in answers],
        dtype=np.float64,
    )
    return values, guaranteed, fallback, bounds


class TestBitIdentity:
    """Coalesced answers == direct query_batch answers, bit for bit."""

    def test_plain_count_batch(self, index):
        lows, highs = make_bounds(500)
        coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5)
        answers = gather_answers(coalescer, lows, highs)
        direct = index.query_batch(lows, highs)
        values, guaranteed, fallback, bounds = answers_to_columns(answers)
        assert np.array_equal(values, direct.values)
        assert np.array_equal(guaranteed, direct.guaranteed)
        assert np.array_equal(fallback, direct.exact_fallback)
        assert np.array_equal(bounds, direct.error_bounds, equal_nan=True)

    @pytest.mark.parametrize(
        "guarantee",
        [Guarantee.absolute(2 * DELTA), Guarantee.relative(0.05)],
        ids=["absolute", "relative"],
    )
    def test_guaranteed_queries(self, index, guarantee):
        lows, highs = make_bounds(300, seed=2)
        coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5)
        answers = gather_answers(coalescer, lows, highs, guarantee)
        direct = index.query_batch(lows, highs, guarantee)
        values, guaranteed, fallback, bounds = answers_to_columns(answers)
        assert np.array_equal(values, direct.values)
        assert np.array_equal(guaranteed, direct.guaranteed)
        assert np.array_equal(fallback, direct.exact_fallback)
        assert np.array_equal(bounds, direct.error_bounds, equal_nan=True)

    def test_mixed_guarantees_coalesce_separately(self, index):
        """Different guarantees never share a batch (separate queues)."""
        lows, highs = make_bounds(60, seed=3)
        guarantee = Guarantee.relative(0.05)

        async def run():
            coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5)
            plain = [
                coalescer.submit((low, high)) for low, high in zip(lows, highs)
            ]
            certified = [
                coalescer.submit((low, high), guarantee)
                for low, high in zip(lows, highs)
            ]
            answers = await asyncio.gather(*plain, *certified)
            await coalescer.stop()
            return answers

        answers = asyncio.run(run())
        direct_plain = index.query_batch(lows, highs)
        direct_certified = index.query_batch(lows, highs, guarantee)
        values = np.array([a.value for a in answers])
        assert np.array_equal(values[:60], direct_plain.values)
        assert np.array_equal(values[60:], direct_certified.values)

    def test_two_key_host(self):
        rng = np.random.default_rng(7)
        xs = rng.uniform(0, 100, size=5_000)
        ys = rng.uniform(0, 100, size=5_000)
        index2d = PolyFit2DIndex.build(xs, ys, aggregate=Aggregate.COUNT, delta=25.0)
        host = EngineHost(index2d)
        assert host.dims == 2
        x_lows, x_highs = make_bounds(100, seed=8, span=(0.0, 100.0))
        y_lows, y_highs = make_bounds(100, seed=9, span=(0.0, 100.0))

        async def run():
            coalescer = Coalescer(host, max_wait_ms=0.5)
            futures = [
                coalescer.submit((xl, xh, yl, yh))
                for xl, xh, yl, yh in zip(x_lows, x_highs, y_lows, y_highs)
            ]
            answers = await asyncio.gather(*futures)
            await coalescer.stop()
            return answers

        answers = asyncio.run(run())
        direct = index2d.query_batch(x_lows, x_highs, y_lows, y_highs)
        assert np.array_equal(
            np.array([a.value for a in answers]), direct.values
        )


class TestEdgeCases:
    def test_single_request_rides_a_batch_of_one(self, index):
        coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5)
        answers = gather_answers(coalescer, [100.0], [600.0])
        direct = index.query_batch(np.array([100.0]), np.array([600.0]))
        assert answers[0].value == direct.values[0]
        assert answers[0].batch_size == 1
        assert coalescer.stats.batches == 1

    def test_zero_arrival_ticks_idle_out(self, index):
        """An empty tick stops the flusher; no batches run while idle."""

        async def run():
            coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5)
            answer = await coalescer.submit((10.0, 500.0))
            assert answer.value >= 0.0
            # Several idle tick lengths: the flusher must have exited
            # rather than spin (its task is done), and no further batches
            # or ticks accumulate while nothing arrives.
            await asyncio.sleep(0.01)
            flushers = list(coalescer._flushers.values())
            assert all(task.done() for task in flushers)
            ticks_when_idle = coalescer.stats.ticks
            await asyncio.sleep(0.01)
            assert coalescer.stats.ticks == ticks_when_idle
            assert coalescer.stats.batches == 1
            await coalescer.stop()

        asyncio.run(run())

    def test_max_batch_overflow_splits(self, index):
        lows, highs = make_bounds(100, seed=4)
        coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5, max_batch=32)
        answers = gather_answers(coalescer, lows, highs)
        direct = index.query_batch(lows, highs)
        assert np.array_equal(
            np.array([a.value for a in answers]), direct.values
        )
        assert coalescer.stats.max_batch_size <= 32
        assert coalescer.stats.batches >= 4
        assert all(a.batch_size <= 32 for a in answers)

    def test_admission_control_fast_fails(self, index):
        async def run():
            coalescer = Coalescer(
                EngineHost(index), max_wait_ms=5.0, max_pending=10
            )
            accepted = [
                coalescer.submit((float(i), float(i + 1))) for i in range(10)
            ]
            with pytest.raises(ServerOverloadedError):
                coalescer.submit((0.0, 1.0))
            assert coalescer.stats.rejected == 1
            answers = await asyncio.gather(*accepted)
            assert len(answers) == 10
            # Drained: admission reopens.
            future = coalescer.submit((0.0, 1.0))
            await future
            await coalescer.stop()

        asyncio.run(run())

    def test_per_request_validation_never_fails_a_batch(self, index):
        async def run():
            coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5)
            good = coalescer.submit((10.0, 700.0))
            with pytest.raises(QueryError):
                coalescer.submit((700.0, 10.0))  # inverted range
            with pytest.raises(QueryError):
                coalescer.submit((1.0, 2.0, 3.0, 4.0))  # 2-D bounds, 1-D host
            with pytest.raises(QueryError):
                coalescer.submit((1.0, 2.0), index="nope")
            answer = await good
            await coalescer.stop()
            return answer

        answer = asyncio.run(run())
        assert answer.value == index.query_batch(
            np.array([10.0]), np.array([700.0])
        ).values[0]

    def test_shutdown_drains_in_flight_futures(self, index):
        lows, highs = make_bounds(200, seed=5)

        async def run():
            coalescer = Coalescer(EngineHost(index), max_wait_ms=50.0)
            futures = [
                coalescer.submit((low, high)) for low, high in zip(lows, highs)
            ]
            # Stop immediately — far before the 50 ms tick would flush.
            await coalescer.stop()
            assert all(f.done() for f in futures)
            with pytest.raises(ServerOverloadedError):
                coalescer.submit((0.0, 1.0))
            return [f.result() for f in futures]

        answers = asyncio.run(run())
        direct = index.query_batch(lows, highs)
        assert np.array_equal(
            np.array([a.value for a in answers]), direct.values
        )

    def test_stop_is_idempotent(self, index):
        async def run():
            coalescer = Coalescer(EngineHost(index), max_wait_ms=0.5)
            await coalescer.submit((1.0, 2.0))
            await coalescer.stop()
            await coalescer.stop()

        asyncio.run(run())


class TestEpochConsistency:
    """Concurrent inserts/compactions never tear a served batch."""

    @staticmethod
    def build_updatable(keys):
        return UpdatablePolyFitIndex.build(
            keys,
            aggregate=Aggregate.COUNT,
            delta=DELTA,
            policy=CompactionPolicy(auto=False),
        )

    def test_every_response_from_exactly_one_version(self, keys):
        """Each answer must equal the full answer of *its* pinned version.

        The probe range is fixed; between submissions the writer task
        inserts keys inside it (each insert bumps the live version) and
        compacts periodically.  A torn read — a batch mixing two buffer
        states — would produce a value matching no version's expected
        count.
        """
        updatable = self.build_updatable(keys)
        low, high = 200.0, 800.0
        # A tiny relative guarantee fails the Lemma-3 certificate for every
        # query, forcing the exact-fallback path: each answer IS the true
        # count of its pinned snapshot — making torn reads directly
        # observable as off-by-a-few values.
        exact = Guarantee.relative(1e-9)
        base_count = float(
            np.count_nonzero((keys >= low) & (keys <= high))
        )
        expected = {updatable.version: base_count}

        async def run():
            host = EngineHost(updatable)
            coalescer = Coalescer(host, max_wait_ms=0.2)
            rng = np.random.default_rng(11)
            futures = []
            inserted = 0.0
            for round_number in range(30):
                futures.extend(
                    coalescer.submit((low, high), exact) for _ in range(5)
                )
                await asyncio.sleep(0)  # let a flush interleave
                fresh = rng.uniform(low, high, size=7)
                updatable.insert(fresh)
                inserted += fresh.size
                expected[updatable.version] = base_count + inserted
                if round_number % 10 == 9:
                    updatable.compact()
                    expected[updatable.version] = base_count + inserted
            answers = await asyncio.gather(*futures)
            await coalescer.stop()
            return answers

        answers = asyncio.run(run())
        assert len(answers) == 150
        seen_versions = set()
        for answer in answers:
            assert answer.version in expected, "answer from an unknown version"
            assert answer.value == expected[answer.version], (
                f"torn read: version {answer.version} served "
                f"{answer.value}, expected {expected[answer.version]}"
            )
            seen_versions.add(answer.version)
        # The writer really did race the reader: multiple versions served.
        assert len(seen_versions) > 1

    def test_epoch_swap_does_not_drop_requests(self, keys):
        """Requests in flight across a compaction all resolve, correctly."""
        updatable = self.build_updatable(keys)
        low, high = 100.0, 900.0
        exact = Guarantee.relative(1e-9)  # force exact answers (see above)

        async def run():
            host = EngineHost(updatable)
            coalescer = Coalescer(host, max_wait_ms=1.0)
            futures = [coalescer.submit((low, high), exact) for _ in range(20)]
            updatable.insert(np.full(13, 500.0))
            updatable.compact()  # epoch swap while the batch is queued
            futures += [coalescer.submit((low, high), exact) for _ in range(20)]
            answers = await asyncio.gather(*futures)
            await coalescer.stop()
            return answers

        answers = asyncio.run(run())
        base = float(np.count_nonzero((keys >= low) & (keys <= high)))
        for answer in answers:
            assert answer.value in (base, base + 13.0)
        # Per-batch single epoch: answers sharing a version agree exactly.
        by_version = {}
        for answer in answers:
            by_version.setdefault(answer.version, set()).add(answer.value)
        assert all(len(values) == 1 for values in by_version.values())


class TestEngineHost:
    def test_rejects_batchless_index(self):
        class NoBatch:
            pass

        with pytest.raises(QueryError):
            EngineHost(NoBatch())

    def test_write_endpoints_require_updatable(self, index):
        host = EngineHost(index)
        with pytest.raises(NotSupportedError):
            host.insert(np.array([1.0]))
        with pytest.raises(NotSupportedError):
            host.compact()

    def test_cache_serves_repeat_batches(self, index):
        host = EngineHost(index, cache_size=4)
        lows, highs = make_bounds(50, seed=6)
        bounds = (lows, highs)
        view = host.pin()
        first = host.execute(view, bounds)
        second = host.execute(view, bounds)
        assert second is first  # replayed by reference
        info = host.cache_info()
        assert info.hits == 1 and info.misses == 1
        assert host.info()["cache"]["hits"] == 1

    def test_cache_invalidated_by_writes(self, keys):
        updatable = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=DELTA,
            policy=CompactionPolicy(auto=False),
        )
        host = EngineHost(updatable, cache_size=4)
        bounds = (np.array([200.0]), np.array([800.0]))
        before = host.execute(host.pin(), bounds)
        updatable.insert(np.array([500.0]))
        after = host.execute(host.pin(), bounds)
        assert after.values[0] == before.values[0] + 1.0
        assert host.cache_info().misses == 2  # version bump = new key

    def test_sharded_static_host_is_bit_identical(self, index):
        lows, highs = make_bounds(400, seed=12)
        with EngineHost(index, num_shards=2) as host:
            answer = host.execute(host.pin(), (lows, highs))
        direct = index.query_batch(lows, highs)
        assert np.array_equal(answer.values, direct.values)

    def test_sharded_updatable_swaps_wrappers(self, keys):
        updatable = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=DELTA,
            policy=CompactionPolicy(auto=False),
        )
        lows, highs = make_bounds(50, seed=13)
        with EngineHost(updatable, num_shards=2) as host:
            first = host.execute(host.pin(), (lows, highs))
            updatable.insert(np.array([500.0]))
            second = host.execute(host.pin(), (lows, highs))
        direct = updatable.query_batch(lows, highs)
        assert np.array_equal(second.values, direct.values)
        inside = (lows <= 500.0) & (highs >= 500.0)
        assert np.array_equal(
            second.values[inside], first.values[inside] + 1.0
        )

    def test_kernel_knob_validation(self, index):
        with pytest.raises(QueryError):
            EngineHost(index, kernel="not-a-backend")
        with pytest.raises(QueryError):
            EngineHost(index, num_shards=0)
