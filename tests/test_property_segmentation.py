"""Property-based tests for the segmentation algorithms."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fitting import dp_segmentation, greedy_segmentation


def _make_function(raw_keys, raw_steps):
    """Build a sorted, strictly-increasing key array and a cumulative value array."""
    keys = np.sort(np.asarray(raw_keys, dtype=np.float64))
    keys = keys + np.arange(keys.size) * 1e-7  # break ties
    values = np.cumsum(np.abs(np.asarray(raw_steps, dtype=np.float64)))
    return keys, values


_datasets = st.integers(min_value=3, max_value=20).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=0, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
    )
)


class TestGreedySegmentationProperties:
    @settings(max_examples=30, deadline=None)
    @given(data=_datasets, delta=st.floats(min_value=0.5, max_value=200),
           degree=st.integers(min_value=1, max_value=2))
    def test_budget_coverage_and_disjointness(self, data, delta, degree):
        keys, values = _make_function(*data)
        segments = greedy_segmentation(keys, values, delta=delta, degree=degree)
        # Budget respected.
        assert all(s.max_error <= delta + 1e-6 for s in segments)
        # Full, disjoint coverage in order.
        assert segments[0].start == 0 and segments[-1].stop == keys.size
        for previous, current in zip(segments, segments[1:]):
            assert current.start == previous.stop

    @settings(max_examples=20, deadline=None)
    @given(data=_datasets, degree=st.integers(min_value=1, max_value=2))
    def test_monotone_in_delta(self, data, degree):
        keys, values = _make_function(*data)
        tight = greedy_segmentation(keys, values, delta=1.0, degree=degree)
        loose = greedy_segmentation(keys, values, delta=100.0, degree=degree)
        assert len(tight) >= len(loose)

    @settings(max_examples=15, deadline=None)
    @given(data=_datasets, delta=st.floats(min_value=0.5, max_value=50))
    def test_gs_is_optimal_vs_dp(self, data, delta):
        keys, values = _make_function(*data)
        gs = greedy_segmentation(keys, values, delta=delta, degree=1)
        dp = dp_segmentation(keys, values, delta=delta, degree=1)
        assert len(gs) == len(dp)

    @settings(max_examples=20, deadline=None)
    @given(data=_datasets, delta=st.floats(min_value=0.5, max_value=50))
    def test_exponential_and_linear_search_agree(self, data, delta):
        keys, values = _make_function(*data)
        fast = greedy_segmentation(keys, values, delta=delta, degree=1,
                                   use_exponential_search=True)
        slow = greedy_segmentation(keys, values, delta=delta, degree=1,
                                   use_exponential_search=False)
        assert [s.stop for s in fast] == [s.stop for s in slow]

    @settings(max_examples=20, deadline=None)
    @given(data=_datasets, delta=st.floats(min_value=0.5, max_value=100))
    def test_segment_polynomials_approximate_their_points(self, data, delta):
        keys, values = _make_function(*data)
        segments = greedy_segmentation(keys, values, delta=delta, degree=2)
        for segment in segments:
            seg_keys = keys[segment.start: segment.stop]
            seg_values = values[segment.start: segment.stop]
            residual = np.max(np.abs(seg_values - np.asarray(segment.polynomial(seg_keys))))
            assert residual <= delta + 1e-6
