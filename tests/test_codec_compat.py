"""Binary-codec version compatibility and corruption handling.

The on-disk format promises two things the fleet manifest now leans on:

* **backwards compatibility** — v1 files (written before the 2-D
  point-extreme payload existed) keep loading, because v2 is purely
  additive;
* **typed failures** — a corrupted or foreign file raises
  :class:`~repro.errors.SerializationError`, never a bare
  ``struct.error`` / ``json.JSONDecodeError`` / ``KeyError`` crash.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Aggregate,
    PolyFitIndex,
    SerializationError,
    load_index_binary,
    save_index_binary,
)
from repro.index.codec import BINARY_MAGIC, read_array_store, write_array_store
from repro.stream import UpdatablePolyFitIndex


def _build_index(aggregate=Aggregate.COUNT, n=2000, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.uniform(0.0, 1000.0, size=n)
    measures = None if aggregate is Aggregate.COUNT else rng.uniform(1.0, 50.0, n)
    return PolyFitIndex.build(keys, measures, aggregate, delta=50.0)


def _rewrite_version(path, version):
    """Rewrite a saved index file's embedded format version in place."""
    meta, arrays = read_array_store(path, mmap=False)
    meta = dict(meta)
    meta["format_version"] = version
    write_array_store(path, dict(arrays), meta)


class TestVersionCompatibility:
    @pytest.mark.parametrize("aggregate", [Aggregate.COUNT, Aggregate.MAX])
    def test_v1_files_still_load(self, tmp_path, aggregate):
        # A 1-D index never carries the v2-only ``ext_*`` payload, so a v1
        # file is byte-for-byte a v2 file with the older version stamp —
        # rewriting the stamp reproduces a genuine pre-v2 artifact.
        index = _build_index(aggregate)
        path = tmp_path / "index.pfbin"
        save_index_binary(index, path)
        _rewrite_version(path, 1)
        loaded = load_index_binary(path)
        lows = np.linspace(0.0, 900.0, 50)
        highs = lows + 80.0
        assert np.array_equal(
            loaded.estimate_batch(lows, highs),
            index.estimate_batch(lows, highs),
            equal_nan=True,
        )
        assert loaded.certified_bound == index.certified_bound

    def test_updatable_v1_file_still_loads(self, tmp_path):
        index = _build_index()
        updatable = UpdatablePolyFitIndex.wrap(index)
        updatable.insert(np.array([1.5, 2.5, 3.5]))
        path = tmp_path / "updatable.pfbin"
        save_index_binary(updatable, path)
        _rewrite_version(path, 1)
        loaded = load_index_binary(path)
        assert loaded.buffer_size == updatable.buffer_size
        lows = np.array([0.0, 500.0])
        highs = np.array([100.0, 600.0])
        assert np.array_equal(
            loaded.snapshot().exact_batch(lows, highs),
            updatable.snapshot().exact_batch(lows, highs),
        )

    def test_unsupported_future_version_raises(self, tmp_path):
        index = _build_index()
        path = tmp_path / "index.pfbin"
        save_index_binary(index, path)
        _rewrite_version(path, 99)
        with pytest.raises(SerializationError, match="version"):
            load_index_binary(path)


class TestCorruption:
    def test_corrupted_magic_raises_typed_error(self, tmp_path):
        index = _build_index()
        path = tmp_path / "index.pfbin"
        save_index_binary(index, path)
        data = bytearray(path.read_bytes())
        data[: len(BINARY_MAGIC)] = b"X" * len(BINARY_MAGIC)
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError, match="magic"):
            load_index_binary(path)

    def test_file_shorter_than_magic_raises(self, tmp_path):
        path = tmp_path / "stub.pfbin"
        path.write_bytes(b"PF")
        with pytest.raises(SerializationError):
            load_index_binary(path)

    def test_truncated_header_raises(self, tmp_path):
        index = _build_index()
        path = tmp_path / "index.pfbin"
        save_index_binary(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(BINARY_MAGIC) + 12])  # magic + length + 4 bytes
        with pytest.raises(SerializationError):
            load_index_binary(path)

    def test_truncated_blob_raises(self, tmp_path):
        index = _build_index()
        path = tmp_path / "index.pfbin"
        save_index_binary(index, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(SerializationError, match="truncated"):
            load_index_binary(path, mmap=False)

    def test_garbage_header_raises(self, tmp_path):
        import struct

        path = tmp_path / "garbage.pfbin"
        body = b"{definitely not json"
        path.write_bytes(BINARY_MAGIC + struct.pack("<Q", len(body)) + body)
        with pytest.raises(SerializationError, match="malformed"):
            load_index_binary(path)

    def test_unknown_kind_raises(self, tmp_path):
        index = _build_index()
        path = tmp_path / "index.pfbin"
        save_index_binary(index, path)
        meta, arrays = read_array_store(path, mmap=False)
        write_array_store(path, dict(arrays), {**meta, "kind": "mystery9d"})
        with pytest.raises(SerializationError, match="kind"):
            load_index_binary(path)
