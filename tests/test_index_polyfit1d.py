"""Tests for the one-key PolyFit index."""

import numpy as np
import pytest

from repro import (
    Aggregate,
    Guarantee,
    IndexConfig,
    PolyFitIndex,
    RangeQuery,
    generate_range_queries,
)
from repro.config import FitConfig, SegmentationConfig
from repro.errors import DataError, GuaranteeNotSatisfiedError, NotSupportedError, QueryError


class TestBuild:
    def test_build_count_with_guarantee(self, tweet_small):
        keys, _ = tweet_small
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                                   guarantee=Guarantee.absolute(200.0))
        assert index.aggregate is Aggregate.COUNT
        assert index.delta == 100.0  # Lemma 2
        assert index.num_segments >= 1

    def test_build_max_with_guarantee(self, hki_small):
        keys, measures = hki_small
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MAX,
                                   guarantee=Guarantee.absolute(200.0))
        assert index.delta == 200.0  # Lemma 4

    def test_build_with_explicit_delta(self, tweet_small):
        keys, _ = tweet_small
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=50.0)
        assert index.delta == 50.0

    def test_build_requires_delta_or_guarantee(self, tweet_small):
        keys, _ = tweet_small
        with pytest.raises(QueryError):
            PolyFitIndex.build(keys, aggregate=Aggregate.COUNT)

    def test_relative_guarantee_rejected_at_build(self, tweet_small):
        keys, _ = tweet_small
        with pytest.raises(QueryError):
            PolyFitIndex.build(keys, aggregate=Aggregate.COUNT,
                               guarantee=Guarantee.relative(0.01))

    def test_sum_requires_measures(self, tweet_small):
        keys, _ = tweet_small
        with pytest.raises(DataError):
            PolyFitIndex.build(keys, aggregate=Aggregate.SUM, delta=10.0)

    def test_count_ignores_missing_measures(self, tweet_small):
        keys, _ = tweet_small
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=100.0)
        assert index.num_segments >= 1

    def test_smaller_delta_more_segments(self, tweet_small):
        keys, _ = tweet_small
        loose = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=500.0)
        tight = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=20.0)
        assert tight.num_segments >= loose.num_segments

    def test_degree_recorded(self, tweet_small, fast_config):
        keys, _ = tweet_small
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=100.0,
                                   config=fast_config)
        assert index.degree == 2

    def test_segments_within_budget(self, count_index):
        assert all(s.max_error <= count_index.delta + 1e-9 for s in count_index.segments)

    def test_size_in_bytes_positive_and_smaller_than_data(self, count_index, tweet_small):
        keys, _ = tweet_small
        assert 0 < count_index.size_in_bytes() < 16 * keys.size

    def test_from_function(self, tweet_small):
        from repro.functions import build_cumulative_function

        keys, _ = tweet_small
        cf = build_cumulative_function(keys, aggregate=Aggregate.COUNT)
        index = PolyFitIndex.from_function(cf, delta=100.0)
        assert index.aggregate is Aggregate.COUNT


class TestCountQueries:
    def test_absolute_guarantee_holds(self, count_index, tweet_small):
        keys, _ = tweet_small
        eps = 100.0
        queries = generate_range_queries(keys, 100, Aggregate.COUNT, seed=1)
        for query in queries:
            result = count_index.query(query, Guarantee.absolute(eps))
            exact = count_index.exact(query)
            assert result.guaranteed
            assert abs(result.value - exact) <= eps + 1e-6

    def test_error_bound_reported(self, count_index):
        result = count_index.query(RangeQuery(-10.0, 10.0, Aggregate.COUNT))
        assert result.error_bound == pytest.approx(2 * count_index.delta)

    def test_relative_guarantee_with_fallback(self, count_index, tweet_small):
        keys, _ = tweet_small
        eps = 0.01
        queries = generate_range_queries(keys, 100, Aggregate.COUNT, seed=2)
        for query in queries:
            result = count_index.query(query, Guarantee.relative(eps))
            exact = count_index.exact(query)
            if exact > 0:
                assert abs(result.value - exact) / exact <= eps + 1e-9

    def test_relative_fallback_used_for_tiny_ranges(self, count_index, tweet_small):
        keys, _ = tweet_small
        # A range containing very few records cannot be certified.
        tiny = RangeQuery(keys[10], keys[12], Aggregate.COUNT)
        result = count_index.query(tiny, Guarantee.relative(0.01))
        assert result.exact_fallback
        assert result.value == count_index.exact(tiny)

    def test_query_out_of_domain_low(self, count_index, tweet_small):
        keys, _ = tweet_small
        query = RangeQuery(keys[0] - 100.0, keys[-1] + 100.0, Aggregate.COUNT)
        result = count_index.query(query, Guarantee.absolute(100.0))
        assert result.value == pytest.approx(keys.size, abs=100.0)

    def test_empty_range_small_answer(self, count_index, tweet_small):
        keys, _ = tweet_small
        query = RangeQuery(keys[0] - 50.0, keys[0] - 10.0, Aggregate.COUNT)
        assert abs(count_index.query_value(query.low, query.high)) <= 2 * count_index.delta

    def test_aggregate_mismatch_rejected(self, count_index):
        with pytest.raises(NotSupportedError):
            count_index.query(RangeQuery(0.0, 1.0, Aggregate.MAX))

    def test_looser_build_than_requested_not_guaranteed(self, tweet_small):
        keys, _ = tweet_small
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=200.0)
        result = index.query(RangeQuery(keys[0], keys[-1], Aggregate.COUNT),
                             Guarantee.absolute(10.0))
        assert not result.guaranteed

    def test_require_guarantee_raises_without_fallback(self, count_index, tweet_small):
        keys, _ = tweet_small
        tiny = RangeQuery(keys[10], keys[11], Aggregate.COUNT)
        with pytest.raises(GuaranteeNotSatisfiedError):
            count_index.require_guarantee(tiny, Guarantee.relative(0.01))

    def test_require_guarantee_absolute_mismatch(self, tweet_small):
        keys, _ = tweet_small
        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=200.0)
        with pytest.raises(GuaranteeNotSatisfiedError):
            index.require_guarantee(RangeQuery(keys[0], keys[-1], Aggregate.COUNT),
                                    Guarantee.absolute(10.0))


class TestSumQueries:
    def test_sum_absolute_guarantee(self, tweet_small):
        keys, measures = tweet_small
        eps = 500.0
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.SUM,
                                   guarantee=Guarantee.absolute(eps))
        queries = generate_range_queries(keys, 60, Aggregate.SUM, seed=3)
        for query in queries:
            result = index.query(query, Guarantee.absolute(eps))
            exact = index.exact(query)
            assert abs(result.value - exact) <= eps + 1e-6


class TestMaxQueries:
    def test_max_absolute_guarantee(self, max_index, hki_small):
        keys, _ = hki_small
        eps = 100.0
        queries = generate_range_queries(keys, 100, Aggregate.MAX, seed=4)
        for query in queries:
            exact = max_index.exact(query)
            if np.isnan(exact):
                continue
            result = max_index.query(query, Guarantee.absolute(eps))
            assert abs(result.value - exact) <= eps + 1e-6

    def test_max_relative_guarantee_with_fallback(self, max_index, hki_small):
        keys, _ = hki_small
        eps = 0.01
        queries = generate_range_queries(keys, 60, Aggregate.MAX, seed=5)
        for query in queries:
            exact = max_index.exact(query)
            if np.isnan(exact) or exact <= 0:
                continue
            result = max_index.query(query, Guarantee.relative(eps))
            assert abs(result.value - exact) / exact <= eps + 1e-9

    def test_min_index(self, hki_small):
        keys, measures = hki_small
        eps = 100.0
        index = PolyFitIndex.build(keys, measures, aggregate=Aggregate.MIN,
                                   guarantee=Guarantee.absolute(eps))
        queries = generate_range_queries(keys, 60, Aggregate.MIN, seed=6)
        for query in queries:
            exact = index.exact(query)
            if np.isnan(exact):
                continue
            result = index.query(query, Guarantee.absolute(eps))
            assert abs(result.value - exact) <= eps + 1e-6

    def test_single_segment_query(self, max_index, hki_small):
        keys, _ = hki_small
        # A query entirely inside the first segment's key span.
        segment = max_index.segments[0]
        query = RangeQuery(segment.key_low, segment.key_high, Aggregate.MAX)
        exact = max_index.exact(query)
        assert abs(max_index.query(query).value - exact) <= max_index.delta + 1e-6

    def test_max_error_bound_is_delta(self, max_index):
        result = max_index.query(
            RangeQuery(max_index.segments[0].key_low, max_index.segments[-1].key_high,
                       Aggregate.MAX)
        )
        assert result.error_bound == pytest.approx(max_index.delta)


class TestDegreeVariants:
    @pytest.mark.parametrize("degree", [1, 2, 3])
    def test_guarantee_holds_for_all_degrees(self, degree, tweet_small):
        keys, _ = tweet_small
        eps = 200.0
        config = IndexConfig(fit=FitConfig(degree=degree),
                             segmentation=SegmentationConfig(delta=eps / 2))
        index = PolyFitIndex.build(keys[:1500], aggregate=Aggregate.COUNT,
                                   guarantee=Guarantee.absolute(eps), config=config)
        queries = generate_range_queries(keys[:1500], 40, Aggregate.COUNT, seed=degree)
        for query in queries:
            exact = index.exact(query)
            assert abs(index.query(query).value - exact) <= eps + 1e-6

    def test_higher_degree_fewer_or_equal_segments(self, tweet_small):
        keys, _ = tweet_small
        subset = keys[:1500]
        counts = {}
        for degree in (1, 2):
            config = IndexConfig(fit=FitConfig(degree=degree),
                                 segmentation=SegmentationConfig(delta=25.0))
            index = PolyFitIndex.build(subset, aggregate=Aggregate.COUNT, delta=25.0,
                                       config=config)
            counts[degree] = index.num_segments
        assert counts[2] <= counts[1]
