"""Tests for the RMI learned-index baseline."""

import numpy as np
import pytest

from repro import Aggregate, Guarantee, RangeQuery, generate_range_queries
from repro.baselines import LinearModel, RecursiveModelIndex, TinyMLP
from repro.errors import DataError, NotSupportedError


class TestLinearModel:
    def test_fits_exact_line(self):
        xs = np.linspace(0, 10, 50)
        ys = 3.0 * xs + 2.0
        model = LinearModel().fit(xs, ys)
        assert model.slope == pytest.approx(3.0)
        assert model.intercept == pytest.approx(2.0)
        assert model.predict(5.0) == pytest.approx(17.0)

    def test_single_point_constant(self):
        model = LinearModel().fit(np.array([1.0]), np.array([7.0]))
        assert model.predict(100.0) == pytest.approx(7.0)

    def test_degenerate_keys_constant(self):
        model = LinearModel().fit(np.array([2.0, 2.0]), np.array([4.0, 6.0]))
        assert model.predict(2.0) == pytest.approx(5.0)

    def test_empty_fit_is_zero(self):
        model = LinearModel().fit(np.array([]), np.array([]))
        assert model.predict(3.0) == 0.0

    def test_num_parameters(self):
        assert LinearModel().num_parameters == 2


class TestTinyMLP:
    def test_architecture_string(self):
        assert TinyMLP(hidden_layers=(8,)).architecture == "1:8:1"
        assert TinyMLP(hidden_layers=(4, 4)).architecture == "1:4:4:1"

    def test_fits_smooth_function(self):
        xs = np.linspace(0, 1, 200)
        ys = np.sin(2 * np.pi * xs)
        mlp = TinyMLP(hidden_layers=(16,), epochs=800, learning_rate=0.05, seed=1).fit(xs, ys)
        predictions = mlp.predict(xs)
        rmse = np.sqrt(np.mean((predictions - ys) ** 2))
        assert rmse < 0.3

    def test_scalar_prediction(self):
        mlp = TinyMLP(hidden_layers=(4,), epochs=50).fit(np.linspace(0, 1, 50), np.linspace(0, 1, 50))
        assert isinstance(mlp.predict(0.5), float)

    def test_num_parameters(self):
        mlp = TinyMLP(hidden_layers=(8,), epochs=1).fit(np.linspace(0, 1, 10), np.zeros(10))
        # 1x8 + 8 biases + 8x1 + 1 bias = 25
        assert mlp.num_parameters == 25

    def test_rejects_bad_architecture(self):
        with pytest.raises(DataError):
            TinyMLP(hidden_layers=(0,))

    def test_rejects_empty_fit(self):
        with pytest.raises(DataError):
            TinyMLP().fit(np.array([]), np.array([]))


class TestRecursiveModelIndex:
    def test_build_and_max_error(self, tweet_small):
        keys, _ = tweet_small
        rmi = RecursiveModelIndex.build(keys, aggregate=Aggregate.COUNT,
                                        stage_sizes=(1, 10, 50))
        assert rmi.max_error >= 0.0
        assert rmi.stage_sizes == (1, 10, 50)

    def test_more_leaf_models_not_worse(self, tweet_small):
        keys, _ = tweet_small
        small = RecursiveModelIndex.build(keys, stage_sizes=(1, 4))
        large = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
        assert large.max_error <= small.max_error * 1.5 + 1e-9

    def test_estimate_accuracy_within_max_error_bound(self, tweet_small):
        keys, _ = tweet_small
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
        queries = generate_range_queries(keys, 50, Aggregate.COUNT, seed=1)
        for query in queries:
            exact = rmi.exact(query)
            approx = rmi.estimate(query)
            assert abs(approx - exact) <= 2 * rmi.max_error + 1e-6

    def test_query_absolute_guarantee_with_fallback(self, tweet_small):
        keys, _ = tweet_small
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
        queries = generate_range_queries(keys, 40, Aggregate.COUNT, seed=2)
        eps = 100.0
        for query in queries:
            result = rmi.query(query, Guarantee.absolute(eps))
            exact = rmi.exact(query)
            assert abs(result.value - exact) <= eps + 1e-6

    def test_query_relative_guarantee_with_fallback(self, tweet_small):
        keys, _ = tweet_small
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
        queries = generate_range_queries(keys, 40, Aggregate.COUNT, seed=3)
        eps = 0.01
        for query in queries:
            result = rmi.query(query, Guarantee.relative(eps))
            exact = rmi.exact(query)
            if exact > 0:
                assert abs(result.value - exact) / exact <= eps + 1e-9

    def test_rejects_max_aggregate(self, tweet_small):
        keys, measures = tweet_small
        with pytest.raises(NotSupportedError):
            RecursiveModelIndex.build(keys, measures, aggregate=Aggregate.MAX)

    def test_rejects_bad_stage_sizes(self):
        with pytest.raises(DataError):
            RecursiveModelIndex(stage_sizes=(2, 10))
        with pytest.raises(DataError):
            RecursiveModelIndex(stage_sizes=())

    def test_size_in_bytes(self, tweet_small):
        keys, _ = tweet_small
        rmi = RecursiveModelIndex.build(keys, stage_sizes=(1, 10, 100))
        assert rmi.size_in_bytes() > 0

    def test_sum_aggregate(self, tweet_small):
        keys, measures = tweet_small
        rmi = RecursiveModelIndex.build(keys, measures, aggregate=Aggregate.SUM,
                                        stage_sizes=(1, 10, 50))
        query = RangeQuery(float(keys[100]), float(keys[-100]), Aggregate.SUM)
        exact = rmi.exact(query)
        assert abs(rmi.estimate(query) - exact) <= 2 * rmi.max_error + 1e-6

    def test_mlp_model_factory(self, tweet_small):
        keys, _ = tweet_small
        rmi = RecursiveModelIndex.build(
            keys[:1000],
            stage_sizes=(1, 4),
            model_factory=lambda: TinyMLP(hidden_layers=(4,), epochs=60),
        )
        assert rmi.max_error >= 0.0
