"""Result-cache correctness: LRU semantics, keying, and staleness safety.

The cache is keyed on ``(version, guarantee, bounds)`` where ``version`` is
the index's monotone write counter, so the staleness property under test is
strong: after ANY insert or compaction, a repeated workload must produce a
fresh (recomputed) answer that matches an uncached engine bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Aggregate
from repro.errors import QueryError
from repro.queries.cache import ResultCache
from repro.queries.engine import QueryEngine
from repro.queries.types import Guarantee, RangeQuery, RangeQuery2D
from repro.stream.updatable import UpdatablePolyFitIndex
from repro.stream.updatable2d import UpdatablePolyFit2DIndex


def _values(raw) -> np.ndarray:
    """Columnar answers of a raw batch result, whichever shape it takes."""
    return np.asarray(getattr(raw, "values", raw))


class TestResultCacheUnit:
    """Direct unit coverage of the OrderedDict LRU."""

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(0)
        with pytest.raises(ValueError):
            ResultCache(-3)

    def test_counters_and_roundtrip(self):
        cache = ResultCache(4)
        key = ResultCache.make_key(0, None, (np.array([1.0]), np.array([2.0])))
        assert cache.get(key) is None
        payload = np.array([42.0])
        cache.put(key, payload)
        assert cache.get(key) is payload
        info = cache.info()
        assert (info.hits, info.misses, info.maxsize, info.currsize) == (1, 1, 4, 1)

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        keys = [ResultCache.make_key(0, None, (np.array([float(i)]),)) for i in range(3)]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        # Touch key 0 so key 1 becomes the least recently used.
        assert cache.get(keys[0]) == "a"
        cache.put(keys[2], "c")
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == "a"
        assert cache.get(keys[2]) == "c"
        assert cache.info().currsize == 2

    def test_clear_resets_everything(self):
        cache = ResultCache(2)
        key = ResultCache.make_key(0, None, (np.array([1.0]),))
        cache.put(key, "x")
        cache.get(key)
        cache.get(ResultCache.make_key(9, None, (np.array([1.0]),)))
        cache.clear()
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_make_key_discriminates_each_component(self):
        bounds = (np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        base = ResultCache.make_key(1, None, bounds)
        assert ResultCache.make_key(2, None, bounds) != base
        assert ResultCache.make_key(1, Guarantee.relative(0.1), bounds) != base
        other = (np.array([1.0, 2.0]), np.array([3.0, 5.0]))
        assert ResultCache.make_key(1, None, other) != base
        # Same bit pattern => same key, even through a fresh array object.
        clone = (np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert ResultCache.make_key(1, None, clone) == base

    def test_make_key_treats_nan_payloads_as_equal(self):
        a = (np.array([np.nan, 1.0]),)
        b = (np.array([np.nan, 1.0]),)
        assert ResultCache.make_key(0, None, a) == ResultCache.make_key(0, None, b)

    def test_guarantees_hash_by_value(self):
        bounds = (np.array([1.0]),)
        k1 = ResultCache.make_key(0, Guarantee.relative(0.05), bounds)
        k2 = ResultCache.make_key(0, Guarantee.relative(0.05), bounds)
        k3 = ResultCache.make_key(0, Guarantee.absolute(100.0), bounds)
        assert k1 == k2
        assert k1 != k3


@pytest.fixture(scope="module")
def stream_keys():
    rng = np.random.default_rng(97)
    return np.sort(rng.uniform(0.0, 1000.0, 5000))


@pytest.fixture(scope="module")
def stream_queries(stream_keys):
    rng = np.random.default_rng(193)
    lows = rng.uniform(0.0, 900.0, 64)
    spans = rng.uniform(1.0, 100.0, 64)
    return [
        RangeQuery(low, low + span, Aggregate.COUNT)
        for low, span in zip(lows, spans)
    ]


class TestEngineCache1D:
    def _engines(self, index):
        cached = QueryEngine.for_index(index, "cached", cache_size=8)
        plain = QueryEngine.for_index(index, "plain")
        return cached, plain

    def test_repeat_workload_is_all_hits(self, stream_keys, stream_queries):
        index = UpdatablePolyFitIndex.build(stream_keys, guarantee=Guarantee.absolute(200.0))
        cached, _ = self._engines(index)
        guarantee = Guarantee.relative(0.1)
        first = cached.run_batch_raw(stream_queries, guarantee)
        for _ in range(3):
            again = cached.run_batch_raw(stream_queries, guarantee)
            assert again is first
        info = cached.cache_info()
        assert info.misses == 1
        assert info.hits == 3

    def test_insert_invalidates_by_version(self, stream_keys, stream_queries):
        index = UpdatablePolyFitIndex.build(stream_keys, guarantee=Guarantee.absolute(200.0))
        cached, plain = self._engines(index)
        rng = np.random.default_rng(7)
        for _ in range(4):
            cached_res = cached.run_batch_raw(stream_queries)
            plain_res = plain.run_batch_raw(stream_queries)
            np.testing.assert_array_equal(_values(cached_res), _values(plain_res))
            index.insert(rng.uniform(0.0, 1000.0, 50))
        # 4 distinct versions were queried: no hit was ever possible.
        assert cached.cache_info().hits == 0
        assert cached.cache_info().misses == 4

    def test_compaction_invalidates_by_version(self, stream_keys, stream_queries):
        index = UpdatablePolyFitIndex.build(stream_keys, guarantee=Guarantee.absolute(200.0))
        cached, plain = self._engines(index)
        index.insert(np.random.default_rng(11).uniform(0.0, 1000.0, 200))
        before = cached.run_batch_raw(stream_queries)
        assert index.compact()
        after = cached.run_batch_raw(stream_queries)
        assert after is not before
        np.testing.assert_array_equal(
            _values(after), _values(plain.run_batch_raw(stream_queries))
        )

    def test_guarantee_distinguishes_entries(self, stream_keys, stream_queries):
        index = UpdatablePolyFitIndex.build(stream_keys, guarantee=Guarantee.absolute(200.0))
        cached, _ = self._engines(index)
        cached.run_batch_raw(stream_queries)
        cached.run_batch_raw(stream_queries, Guarantee.relative(0.1))
        assert cached.cache_info().misses == 2
        cached.run_batch_raw(stream_queries)
        cached.run_batch_raw(stream_queries, Guarantee.relative(0.1))
        assert cached.cache_info().hits == 2

    def test_cache_clear_and_info_lifecycle(self, stream_keys, stream_queries):
        index = UpdatablePolyFitIndex.build(stream_keys, guarantee=Guarantee.absolute(200.0))
        cached, plain = self._engines(index)
        assert plain.cache_info() is None
        plain.cache_clear()  # must be a harmless no-op
        cached.run_batch_raw(stream_queries)
        assert cached.cache_info().currsize == 1
        cached.cache_clear()
        info = cached.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_run_batch_uses_cache(self, stream_keys, stream_queries):
        index = UpdatablePolyFitIndex.build(stream_keys, guarantee=Guarantee.absolute(200.0))
        cached, _ = self._engines(index)
        cached.run(stream_queries)
        cached.run(stream_queries)
        assert cached.cache_info().hits >= 1


class TestEngineCache2D:
    @pytest.fixture(scope="class")
    def points(self):
        rng = np.random.default_rng(37)
        return rng.uniform(0.0, 100.0, 4000), rng.uniform(0.0, 100.0, 4000)

    @pytest.fixture(scope="class")
    def queries2d(self):
        rng = np.random.default_rng(53)
        x_lows = rng.uniform(0.0, 80.0, 32)
        y_lows = rng.uniform(0.0, 80.0, 32)
        return [
            RangeQuery2D(xl, xl + 15.0, yl, yl + 15.0, Aggregate.COUNT)
            for xl, yl in zip(x_lows, y_lows)
        ]

    def test_insert_and_compact_never_serve_stale(self, points, queries2d):
        xs, ys = points
        index = UpdatablePolyFit2DIndex.build(
            xs, ys, guarantee=Guarantee.absolute(400.0), grid_resolution=48
        )
        cached = QueryEngine.for_index(index, "cached2d", cache_size=4)
        plain = QueryEngine.for_index(index, "plain2d")
        rng = np.random.default_rng(41)
        for step in range(3):
            cached_res = _values(cached.run_batch_raw(queries2d))
            np.testing.assert_array_equal(
                cached_res, _values(plain.run_batch_raw(queries2d))
            )
            # Exactness check against ground truth: cached answers must track
            # the live dataset, not the one at cache-fill time.
            index.insert(
                rng.uniform(0.0, 100.0, 100), rng.uniform(0.0, 100.0, 100)
            )
        assert cached.cache_info().hits == 0
        index.compact()
        np.testing.assert_array_equal(
            _values(cached.run_batch_raw(queries2d)),
            _values(plain.run_batch_raw(queries2d)),
        )

    def test_repeat_hits_after_quiescence(self, points, queries2d):
        xs, ys = points
        index = UpdatablePolyFit2DIndex.build(
            xs, ys, guarantee=Guarantee.absolute(400.0), grid_resolution=48
        )
        cached = QueryEngine.for_index(index, "cached2d", cache_size=4)
        first = cached.run_batch_raw(queries2d)
        assert cached.run_batch_raw(queries2d) is first
        assert cached.cache_info().hits == 1


class TestForIndexKernelKnob:
    def test_unknown_kernel_rejected(self, count_index):
        with pytest.raises(QueryError):
            QueryEngine.for_index(count_index, kernel="cuda")

    def test_numba_without_runtime_rejected(self, count_index):
        from repro.kernels import NUMBA_AVAILABLE

        if NUMBA_AVAILABLE:
            pytest.skip("numba present: the knob is accepted")
        with pytest.raises(QueryError):
            QueryEngine.for_index(count_index, kernel="numba")

    def test_kernel_knob_requires_support(self):
        engine_target = object()
        with pytest.raises(QueryError):
            QueryEngine.for_index(engine_target, kernel="numpy")

    def test_numpy_knob_applies_to_updatable_base(self, stream_keys):
        index = UpdatablePolyFitIndex.build(stream_keys, guarantee=Guarantee.absolute(200.0))
        QueryEngine.for_index(index, kernel="numpy")
        assert index.base.kernel == "numpy"
        index.base.set_kernel("auto")
