"""Property-based tests (hypothesis) for the fitting layer."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.fitting import (
    Polynomial1D,
    fit_lstsq_polynomial,
    fit_minimax_polynomial,
)

# Strategy: a modest number of distinct, finite keys plus bounded values.
_point_sets = st.integers(min_value=2, max_value=25).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
            unique=True,
        ),
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
    )
)


class TestMinimaxProperties:
    @settings(max_examples=40, deadline=None)
    @given(points=_point_sets, degree=st.integers(min_value=0, max_value=3))
    def test_reported_error_matches_residual(self, points, degree):
        keys, values = map(np.asarray, points)
        fit = fit_minimax_polynomial(keys, values, degree)
        residual = np.max(np.abs(values - np.asarray(fit.polynomial(keys))))
        assert fit.max_error == pytest.approx(residual, rel=1e-6, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(points=_point_sets, degree=st.integers(min_value=0, max_value=3))
    def test_minimax_no_worse_than_least_squares(self, points, degree):
        keys, values = map(np.asarray, points)
        minimax = fit_minimax_polynomial(keys, values, degree, solver="lp")
        lstsq = fit_lstsq_polynomial(keys, values, degree)
        assert minimax.max_error <= lstsq.max_error + 1e-6 + 1e-9 * abs(lstsq.max_error)

    @settings(max_examples=30, deadline=None)
    @given(points=_point_sets)
    def test_higher_degree_never_hurts(self, points):
        keys, values = map(np.asarray, points)
        errors = [
            fit_minimax_polynomial(keys, values, degree, solver="lp").max_error
            for degree in (0, 1, 2)
        ]
        # The relative term absorbs the LP's conditioning noise: with nearly
        # coincident scaled keys HiGHS can be ~1e-7-relative suboptimal at one
        # degree and near-exact at the next.
        assert errors[1] <= errors[0] * (1 + 1e-7) + 1e-6
        assert errors[2] <= errors[1] * (1 + 1e-7) + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(points=_point_sets, degree=st.integers(min_value=1, max_value=3))
    def test_interpolation_when_degree_sufficient(self, points, degree):
        keys, values = map(np.asarray, points)
        if keys.size > degree + 1:
            keys = keys[: degree + 1]
            values = values[: degree + 1]
        # Interpolation is only numerically achievable when keys are well
        # separated relative to their span.
        span = float(keys.max() - keys.min())
        gaps = np.diff(np.sort(keys))
        assume(span > 0 and gaps.min() > 1e-6 * span)
        fit = fit_minimax_polynomial(keys, values, degree)
        scale = max(1.0, np.max(np.abs(values)))
        assert fit.max_error <= 1e-6 * scale

    @settings(max_examples=30, deadline=None)
    @given(
        coeffs=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
        shift=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_fit_recovers_exact_polynomials(self, coeffs, shift):
        """Fitting samples of a polynomial of degree d with degree d gives ~0 error."""
        poly = Polynomial1D(np.asarray(coeffs), shift=shift, scale=10.0)
        keys = np.linspace(shift - 20, shift + 20, 30)
        values = np.asarray(poly(keys))
        fit = fit_minimax_polynomial(keys, values, degree=len(coeffs) - 1, solver="lp")
        scale = max(1.0, np.max(np.abs(values)))
        assert fit.max_error <= 1e-5 * scale


class TestPolynomialProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        coeffs=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
        low=st.floats(min_value=-100, max_value=99, allow_nan=False),
        width=st.floats(min_value=0.001, max_value=50, allow_nan=False),
    )
    def test_extreme_bounds_dense_sampling(self, coeffs, low, width):
        poly = Polynomial1D(np.asarray(coeffs), shift=0.0, scale=25.0)
        high = low + width
        grid = np.linspace(low, high, 2001)
        sampled = np.asarray(poly(grid))
        _, maximum = poly.extreme_on(low, high, maximize=True)
        _, minimum = poly.extreme_on(low, high, maximize=False)
        tolerance = 1e-6 * max(1.0, np.max(np.abs(sampled)))
        assert maximum >= sampled.max() - tolerance
        assert minimum <= sampled.min() + tolerance

    @settings(max_examples=50, deadline=None)
    @given(
        coeffs=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=5,
        ),
        k=st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    )
    def test_serialization_round_trip_preserves_values(self, coeffs, k):
        poly = Polynomial1D(np.asarray(coeffs), shift=1.5, scale=3.0)
        clone = Polynomial1D.from_dict(poly.to_dict())
        assert clone(k) == pytest.approx(poly(k), rel=1e-12, abs=1e-12)
