"""Tests for minimax (Chebyshev) polynomial fitting."""

import numpy as np
import pytest

from repro.errors import FittingError
from repro.fitting import fit_lstsq_polynomial, fit_minimax_polynomial, fit_minimax_surface


class TestFitMinimaxPolynomial:
    def test_exact_interpolation_when_enough_degree(self):
        keys = np.array([0.0, 1.0, 2.0])
        values = np.array([1.0, 3.0, 7.0])
        fit = fit_minimax_polynomial(keys, values, degree=2)
        assert fit.max_error == pytest.approx(0.0, abs=1e-9)
        for k, v in zip(keys, values):
            assert fit.polynomial(k) == pytest.approx(v, abs=1e-9)

    def test_single_point_constant(self):
        fit = fit_minimax_polynomial(np.array([5.0]), np.array([42.0]), degree=3)
        assert fit.polynomial(5.0) == pytest.approx(42.0)
        assert fit.max_error == pytest.approx(0.0, abs=1e-12)

    def test_known_chebyshev_solution(self):
        # Best constant (degree 0) approximation of y = x on [0, 1] sampled
        # densely is 0.5 with max error 0.5.
        keys = np.linspace(0.0, 1.0, 101)
        fit = fit_minimax_polynomial(keys, keys, degree=0, solver="lp")
        assert fit.polynomial(0.3) == pytest.approx(0.5, abs=1e-6)
        assert fit.max_error == pytest.approx(0.5, abs=1e-6)

    def test_best_linear_fit_of_parabola(self):
        # Best degree-1 minimax approximation of x^2 on [0, 1] is x - 1/8,
        # with equioscillation error 1/8 (classic Chebyshev example).
        keys = np.linspace(0.0, 1.0, 201)
        values = keys**2
        fit = fit_minimax_polynomial(keys, values, degree=1, solver="lp")
        assert fit.max_error == pytest.approx(0.125, abs=1e-3)

    def test_minimax_not_worse_than_lstsq(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.uniform(0, 10, size=60))
        values = np.sin(keys) * 5 + rng.normal(0, 0.2, size=60)
        lp = fit_minimax_polynomial(keys, values, degree=3, solver="lp")
        ls = fit_lstsq_polynomial(keys, values, degree=3)
        assert lp.max_error <= ls.max_error + 1e-9

    def test_error_reported_matches_residuals(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.uniform(0, 1, size=40))
        values = rng.uniform(0, 100, size=40)
        fit = fit_minimax_polynomial(keys, values, degree=2)
        residual = np.max(np.abs(values - fit.polynomial(keys)))
        assert fit.max_error == pytest.approx(residual, rel=1e-9, abs=1e-9)

    def test_higher_degree_never_increases_error(self):
        rng = np.random.default_rng(4)
        keys = np.sort(rng.uniform(0, 5, size=50))
        values = np.exp(keys / 3.0)
        errors = [
            fit_minimax_polynomial(keys, values, degree=deg, solver="lp").max_error
            for deg in range(4)
        ]
        for lower, higher in zip(errors, errors[1:]):
            assert higher <= lower + 1e-9

    def test_rescaling_handles_large_keys(self):
        keys = np.linspace(1e8, 1e8 + 1000, 50)
        values = (keys - 1e8) ** 2 / 1000.0
        fit = fit_minimax_polynomial(keys, values, degree=2)
        assert fit.max_error < 1e-3

    def test_rejects_empty(self):
        with pytest.raises(FittingError):
            fit_minimax_polynomial(np.array([]), np.array([]), degree=1)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(FittingError):
            fit_minimax_polynomial(np.array([1.0]), np.array([1.0, 2.0]), degree=1)

    def test_rejects_nan(self):
        with pytest.raises(FittingError):
            fit_minimax_polynomial(np.array([1.0, np.nan]), np.array([1.0, 2.0]), degree=1)

    def test_rejects_negative_degree(self):
        with pytest.raises(FittingError):
            fit_minimax_polynomial(np.array([1.0]), np.array([1.0]), degree=-1)

    def test_rejects_unknown_solver(self):
        with pytest.raises(FittingError):
            fit_minimax_polynomial(np.array([1.0]), np.array([1.0]), degree=1, solver="magic")

    def test_lstsq_solver_path(self):
        keys = np.linspace(0, 1, 30)
        values = 2 * keys + 1
        fit = fit_minimax_polynomial(keys, values, degree=1, solver="lstsq")
        assert fit.max_error == pytest.approx(0.0, abs=1e-9)


class TestFitMinimaxSurface:
    def test_exact_fit_of_planar_surface(self):
        rng = np.random.default_rng(5)
        us = rng.uniform(0, 1, size=40)
        vs = rng.uniform(0, 1, size=40)
        values = 2.0 + 3.0 * us - 1.5 * vs
        fit = fit_minimax_surface(us, vs, values, degree=1)
        assert fit.max_error < 1e-6

    def test_quadratic_surface(self):
        grid = np.linspace(0, 1, 12)
        uu, vv = np.meshgrid(grid, grid)
        values = uu.ravel() ** 2 + vv.ravel() * uu.ravel()
        fit = fit_minimax_surface(uu.ravel(), vv.ravel(), values, degree=2)
        assert fit.max_error < 1e-6

    def test_degree_zero_is_midrange(self):
        us = np.array([0.0, 1.0, 0.0, 1.0])
        vs = np.array([0.0, 0.0, 1.0, 1.0])
        values = np.array([0.0, 10.0, 0.0, 10.0])
        fit = fit_minimax_surface(us, vs, values, degree=0, solver="lp")
        assert fit.polynomial(0.5, 0.5) == pytest.approx(5.0, abs=1e-6)
        assert fit.max_error == pytest.approx(5.0, abs=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(FittingError):
            fit_minimax_surface(np.array([]), np.array([]), np.array([]), degree=1)

    def test_rejects_mismatched(self):
        with pytest.raises(FittingError):
            fit_minimax_surface(np.array([1.0]), np.array([1.0, 2.0]), np.array([1.0]), degree=1)

    def test_error_matches_residual(self):
        rng = np.random.default_rng(6)
        us = rng.uniform(0, 1, size=50)
        vs = rng.uniform(0, 1, size=50)
        values = np.sin(us * 3) + np.cos(vs * 2)
        fit = fit_minimax_surface(us, vs, values, degree=2)
        residual = np.max(np.abs(values - fit.polynomial(us, vs)))
        assert fit.max_error == pytest.approx(residual, rel=1e-6, abs=1e-9)
