"""Tests for the query engine and accuracy evaluation."""

import numpy as np
import pytest

from repro import (
    Aggregate,
    Guarantee,
    QueryEngine,
    QueryResult,
    RangeQuery,
    evaluate_accuracy,
    generate_range_queries,
)
from repro.errors import QueryError


class TestEvaluateAccuracy:
    def test_perfect_results(self):
        pairs = [(QueryResult(value=10.0), 10.0), (QueryResult(value=5.0), 5.0)]
        report = evaluate_accuracy(pairs)
        assert report.num_queries == 2
        assert report.mean_absolute_error == 0.0
        assert report.max_relative_error == 0.0
        assert report.guarantee_violations == 0

    def test_error_statistics(self):
        pairs = [
            (QueryResult(value=11.0), 10.0),   # abs err 1, rel 0.1
            (QueryResult(value=8.0), 10.0),    # abs err 2, rel 0.2
        ]
        report = evaluate_accuracy(pairs)
        assert report.mean_absolute_error == pytest.approx(1.5)
        assert report.max_absolute_error == pytest.approx(2.0)
        assert report.mean_relative_error == pytest.approx(0.15)
        assert report.max_relative_error == pytest.approx(0.2)

    def test_violation_counting(self):
        guarantee = Guarantee.absolute(1.0)
        pairs = [
            (QueryResult(value=10.5, guaranteed=True), 10.0),
            (QueryResult(value=15.0, guaranteed=True), 10.0),   # violated
            (QueryResult(value=15.0, guaranteed=False), 10.0),  # not claimed
        ]
        report = evaluate_accuracy(pairs, guarantee)
        assert report.guarantee_violations == 1

    def test_fallback_rate(self):
        pairs = [
            (QueryResult(value=1.0, exact_fallback=True), 1.0),
            (QueryResult(value=2.0), 2.0),
        ]
        assert evaluate_accuracy(pairs).fallback_rate == pytest.approx(0.5)

    def test_zero_exact_skipped_in_relative(self):
        pairs = [(QueryResult(value=0.5), 0.0)]
        report = evaluate_accuracy(pairs)
        assert report.max_absolute_error == 0.5

    def test_no_nonzero_exact_reports_nan_relative(self):
        # Every exact answer is zero: relative error is undefined, and the
        # report must say so (NaN) instead of claiming a perfect 0.0.
        pairs = [(QueryResult(value=0.5), 0.0), (QueryResult(value=2.0), 0.0)]
        report = evaluate_accuracy(pairs)
        assert np.isnan(report.mean_relative_error)
        assert np.isnan(report.median_relative_error)
        assert np.isnan(report.max_relative_error)
        assert report.max_absolute_error == 2.0

    def test_nan_pair_treated_as_exact(self):
        pairs = [(QueryResult(value=float("nan")), float("nan"))]
        assert evaluate_accuracy(pairs).max_absolute_error == 0.0

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            evaluate_accuracy([])


class TestQueryEngine:
    def test_engine_with_index(self, count_index, tweet_small):
        keys, _ = tweet_small
        engine = QueryEngine(count_index.query, count_index.exact, name="PolyFit-2")
        queries = generate_range_queries(keys, 40, Aggregate.COUNT, seed=1)
        report = engine.accuracy(queries, Guarantee.absolute(100.0))
        assert report.num_queries == 40
        assert report.max_absolute_error <= 100.0 + 1e-6
        assert report.guarantee_violations == 0

    def test_engine_with_plain_float_method(self, tweet_small):
        keys, _ = tweet_small

        def exact(query: RangeQuery) -> float:
            return float(np.count_nonzero((keys >= query.low) & (keys <= query.high)))

        engine = QueryEngine(lambda q: exact(q) + 3.0, exact, name="offset")
        queries = generate_range_queries(keys, 10, Aggregate.COUNT, seed=2)
        report = engine.accuracy(queries)
        assert report.max_absolute_error == pytest.approx(3.0)

    def test_engine_rejects_empty_workload(self, count_index):
        engine = QueryEngine(count_index.query, count_index.exact)
        with pytest.raises(QueryError):
            engine.run([])

    def test_run_returns_pairs(self, count_index, tweet_small):
        keys, _ = tweet_small
        engine = QueryEngine(count_index.query, count_index.exact)
        queries = generate_range_queries(keys, 5, Aggregate.COUNT, seed=3)
        pairs = engine.run(queries)
        assert len(pairs) == 5
        assert all(isinstance(result, QueryResult) for result, _ in pairs)


class TestEngineContextManager:
    def test_with_block_closes_sharded_pool(self):
        keys = np.sort(np.random.default_rng(0).uniform(0, 1000, 2000))
        from repro import PolyFitIndex

        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=50.0)
        with QueryEngine.for_index(index, num_shards=2) as engine:
            assert engine is engine.__enter__()  # re-entrant, returns self
            sharded = engine._sharded
            assert sharded is not None
            # Force pool creation through a large-enough workload.
            lows = np.zeros(2 * sharded._min_queries_per_shard)
            highs = lows + 10.0
            engine.run_batch_raw(
                generate_range_queries(keys, 5, Aggregate.COUNT, seed=1)
            )
            sharded.query_batch(lows, highs)
            assert sharded._pool is not None
        assert sharded._pool is None  # released on exit

    def test_close_is_idempotent_without_shards(self):
        keys = np.sort(np.random.default_rng(0).uniform(0, 1000, 500))
        from repro import PolyFitIndex

        index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=50.0)
        with QueryEngine.for_index(index) as engine:
            pass
        engine.close()  # no sharded pool wired in: both closes are no-ops
