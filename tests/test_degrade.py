"""Degraded fleet reads: answers stay certified when partitions fail.

The property under test (router ``failure_policy="degrade"``): when a
partition's scatter call fails, the merged answer for every query whose
clip touched that partition is still returned, with its certified bound
*widened* to cover anything the missing partition could have contributed —
so ``|answer - truth| <= error_bound`` keeps holding (truth from a healthy
monolithic oracle), the result is flagged ``degraded`` per query and
``partial`` overall, and the failed partition ids are surfaced.  Queries
whose clips avoided the failed partition are answered bit-identically to a
healthy fleet.  ``fail_fast`` (the default) propagates the failure instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Aggregate, Guarantee, IndexFleet, PolyFitIndex
from repro.config import FitConfig, IndexConfig, SegmentationConfig
from repro.errors import DataError, QueryError, SerializationError
from repro.queries.types import BatchQueryResult, GuaranteeKind
from repro.testing.faults import FlakyView

FAST = IndexConfig(fit=FitConfig(degree=1), segmentation=SegmentationConfig(delta=25.0))
AGGREGATES = [Aggregate.COUNT, Aggregate.SUM, Aggregate.MAX, Aggregate.MIN]


def _dataset(n=4000, seed=21):
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.uniform(0.0, 1000.0, size=n))
    measures = rng.uniform(1.0, 40.0, size=n)
    return keys, measures


def _fleet_and_oracle(aggregate, keys, measures, *, failure_policy="degrade"):
    m = None if aggregate is Aggregate.COUNT else measures
    fleet = IndexFleet.build(
        keys, m, aggregate,
        delta=25.0, config=FAST, num_partitions=4,
        failure_policy=failure_policy,
    )
    oracle = PolyFitIndex.build(keys, m, aggregate=aggregate, delta=25.0, config=FAST)
    return fleet, oracle


def _fail_partition(snapshot, pid):
    """Replace one healthy view with a failing one, post reserve-capture."""
    router = getattr(snapshot, "_router", snapshot)
    flaky = FlakyView(router._views[pid])
    router._views[pid] = flaky
    router._engines[pid] = flaky
    return flaky


def _queries():
    lows = np.array([0.0, 100.0, 300.0, 600.0, 950.0, -np.inf, 400.0])
    highs = np.array([1500.0, 220.0, 480.0, 740.0, 1000.0, np.inf, 401.0])
    return lows, highs


class TestDegradedReads:
    @pytest.mark.parametrize("aggregate", AGGREGATES)
    @pytest.mark.parametrize(
        "guarantee", [None, Guarantee.absolute(5.0), Guarantee.relative(0.1)]
    )
    def test_answer_contains_truth_and_flags_surface(self, aggregate, guarantee):
        keys, measures = _dataset()
        fleet, oracle = _fleet_and_oracle(aggregate, keys, measures)
        router = fleet.snapshot()
        _fail_partition(router, 1)
        lows, highs = _queries()
        result = router.query_batch(lows, highs, guarantee)
        assert result.partial
        assert result.failed_partitions == (1,)
        assert result.degraded.any()
        truth = oracle.exact_batch(lows, highs)
        finite = np.isfinite(result.error_bounds) & ~np.isnan(truth)
        assert np.all(
            np.abs(result.values[finite] - truth[finite])
            <= result.error_bounds[finite] + 1e-9
        )
        # Certification is never claimed for free on degraded queries.
        if guarantee is not None and guarantee.kind is GuaranteeKind.ABSOLUTE:
            claimed = result.guaranteed & result.degraded
            assert np.all(
                result.error_bounds[claimed] <= guarantee.epsilon + 1e-9
            )

    @pytest.mark.parametrize("aggregate", AGGREGATES)
    def test_untouched_queries_bit_identical_to_healthy(self, aggregate):
        keys, measures = _dataset(seed=22)
        fleet, _ = _fleet_and_oracle(aggregate, keys, measures)
        healthy = fleet.snapshot()
        degraded = fleet.snapshot()
        _fail_partition(degraded, 2)
        lows, highs = _queries()
        want = healthy.query_batch(lows, highs, Guarantee.relative(0.1))
        got = degraded.query_batch(lows, highs, Guarantee.relative(0.1))
        clean = ~got.degraded
        assert clean.any()
        assert np.array_equal(got.values[clean], want.values[clean], equal_nan=True)
        assert np.array_equal(got.guaranteed[clean], want.guaranteed[clean])
        assert np.array_equal(
            got.error_bounds[clean], want.error_bounds[clean], equal_nan=True
        )

    def test_fail_fast_propagates(self):
        keys, measures = _dataset(seed=23)
        fleet, _ = _fleet_and_oracle(
            Aggregate.COUNT, keys, measures, failure_policy="fail_fast"
        )
        router = fleet.snapshot()
        _fail_partition(router, 0)
        lows, highs = _queries()
        with pytest.raises(SerializationError):
            router.query_batch(lows, highs)

    def test_estimate_and_exact_stay_fail_fast_under_degrade(self):
        # Bare arrays carry no bound column to widen; a partial answer there
        # would be a silent wrong answer, so these propagate even in degrade.
        keys, measures = _dataset(seed=24)
        fleet, _ = _fleet_and_oracle(Aggregate.COUNT, keys, measures)
        router = fleet.snapshot()
        _fail_partition(router, 0)
        lows, highs = _queries()
        with pytest.raises(SerializationError):
            router.estimate_batch(lows, highs)
        with pytest.raises(SerializationError):
            router.exact_batch(lows, highs)

    def test_degrade_with_no_failures_is_bit_identical(self):
        keys, measures = _dataset(seed=25)
        fleet_d, _ = _fleet_and_oracle(Aggregate.SUM, keys, measures)
        fleet_f, _ = _fleet_and_oracle(
            Aggregate.SUM, keys, measures, failure_policy="fail_fast"
        )
        lows, highs = _queries()
        for guarantee in (None, Guarantee.absolute(5.0), Guarantee.relative(0.1)):
            a = fleet_d.snapshot().query_batch(lows, highs, guarantee)
            b = fleet_f.snapshot().query_batch(lows, highs, guarantee)
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.guaranteed, b.guaranteed)
            assert np.array_equal(a.error_bounds, b.error_bounds)
            assert not a.partial and a.failed_partitions == ()

    def test_transient_failure_recovers(self):
        keys, measures = _dataset(seed=26)
        fleet, _ = _fleet_and_oracle(Aggregate.COUNT, keys, measures)
        router = fleet.snapshot()
        flaky = _fail_partition(router, 1)
        flaky.failing = False
        flaky.fail_next = 1
        lows, highs = _queries()
        first = router.query_batch(lows, highs)
        assert first.partial
        second = router.query_batch(lows, highs)
        assert not second.partial and not second.degraded.any()

    def test_rejects_unknown_policy(self):
        keys, measures = _dataset(seed=27)
        with pytest.raises(DataError, match="failure_policy"):
            IndexFleet.build(
                keys, None, Aggregate.COUNT,
                delta=25.0, config=FAST, num_partitions=2,
                failure_policy="retry",
            )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        pid=st.integers(0, 3),
        aggregate=st.sampled_from(AGGREGATES),
    )
    def test_containment_property(self, seed, pid, aggregate):
        rng = np.random.default_rng(seed)
        keys, measures = _dataset(n=1200, seed=seed)
        fleet, oracle = _fleet_and_oracle(aggregate, keys, measures)
        router = fleet.snapshot()
        _fail_partition(router, pid)
        lows = rng.uniform(-50.0, 1050.0, size=24)
        highs = lows + rng.uniform(0.0, 500.0, size=24)
        result = router.query_batch(lows, highs)
        truth = oracle.exact_batch(lows, highs)
        finite = np.isfinite(result.error_bounds) & ~np.isnan(truth)
        assert np.all(
            np.abs(result.values[finite] - truth[finite])
            <= result.error_bounds[finite] + 1e-9
        )
        # Un-degraded queries are exactly the healthy-path answers.
        clean = ~result.degraded
        healthy = fleet.snapshot().query_batch(lows, highs)
        assert np.array_equal(
            result.values[clean], healthy.values[clean], equal_nan=True
        )


class TestBatchResultFields:
    def test_partial_property_and_defaults(self):
        values = np.array([1.0, 2.0])
        result = BatchQueryResult(
            values=values,
            guaranteed=np.array([True, True]),
            exact_fallback=np.array([False, False]),
            error_bounds=np.array([0.1, 0.2]),
        )
        assert not result.partial
        assert result.failed_partitions == ()
        assert result.degraded.shape == values.shape

    def test_degraded_shape_checked(self):
        with pytest.raises(QueryError):
            BatchQueryResult(
                values=np.array([1.0, 2.0]),
                guaranteed=np.array([True, True]),
                exact_fallback=np.array([False, False]),
                error_bounds=np.array([0.1, 0.2]),
                degraded=np.array([True]),
            )
