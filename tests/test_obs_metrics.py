"""Metrics registry unit tests: instruments, exposition grammar, threading.

The exposition tests check the Prometheus text-format 0.0.4 rules the
scraping ecosystem actually enforces — escaping, TYPE declarations,
cumulative histogram buckets — both through the library's own
``validate_exposition`` checker and with direct string assertions so the
checker itself cannot paper over a regression.
"""

import math
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_family,
    exposed_metric_names,
    gauge_family,
    histogram_family,
    log_buckets,
    validate_exposition,
)


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_counter_reset(self):
        counter = Counter()
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0

    def test_gauge_set_inc_dec_max(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0
        gauge.set_max(2.0)
        assert gauge.value == 4.0
        gauge.set_max(9.0)
        assert gauge.value == 9.0

    def test_log_buckets_geometric(self):
        buckets = log_buckets(1e-3, 1.0, 4)
        assert buckets[0] == 1e-3
        assert buckets[-1] == 1.0
        ratios = [b2 / b1 for b1, b2 in zip(buckets, buckets[1:])]
        assert all(r == pytest.approx(ratios[0], rel=1e-6) for r in ratios)
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0, 4)

    def test_histogram_bucket_boundaries_are_le(self):
        # le-semantics: a value exactly on a bound lands in that bucket.
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 2.0, 3.0, 100.0):
            hist.observe(value)
        cumulative = hist.cumulative_counts()
        assert cumulative == [(1.0, 2), (2.0, 3), (4.0, 4), (math.inf, 5)]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.5)

    def test_histogram_observe_many_matches_scalar(self):
        values = np.random.default_rng(3).uniform(0.0, 5.0, size=1000)
        scalar = Histogram(buckets=(1.0, 2.0, 4.0))
        vector = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in values:
            scalar.observe(v)
        vector.observe_many(values)
        assert scalar.cumulative_counts() == vector.cumulative_counts()
        assert scalar.sum == pytest.approx(vector.sum)

    def test_histogram_percentiles(self):
        hist = Histogram(buckets=tuple(float(b) for b in range(1, 101)))
        hist.observe_many(np.arange(1, 101, dtype=np.float64))
        result = hist.percentiles()
        assert set(result) == {"p50", "p95", "p99"}
        assert result["p50"] == pytest.approx(50.0, abs=1.0)
        assert result["p99"] == pytest.approx(99.0, abs=1.0)

    def test_histogram_percentile_overflow_clamps_to_max(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(123.0)
        assert hist.percentile(99) <= 123.0

    def test_default_buckets_span_micro_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0


class TestFamilies:
    def test_labeled_family_children(self):
        fam = counter_family("t_requests_total", "help", ("route",))
        fam.labels(route="/a").inc()
        fam.labels(route="/a").inc()
        fam.labels(route="/b").inc()
        assert fam.labels(route="/a").value == 2
        assert fam.labels(route="/b").value == 1
        with pytest.raises(ValueError):
            fam.labels(wrong="x")

    def test_labelless_family_proxies_instrument(self):
        fam = counter_family("t_plain_total", "help")
        fam.inc(3)
        assert fam.value == 3

    def test_labeled_family_rejects_proxy(self):
        fam = counter_family("t_lab_total", "help", ("x",))
        with pytest.raises(ValueError):
            fam.inc()

    def test_disabled_family_is_null(self):
        fam = counter_family("t_off_total", "help", enabled=False)
        assert fam is NULL_INSTRUMENT
        fam.inc()
        fam.labels(anything="ok").observe(1.0)  # absorbs the whole API
        assert fam.value == 0.0

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            counter_family("0bad", "help")
        with pytest.raises(ValueError):
            counter_family("ok_total", "help", ("0bad",))
        with pytest.raises(ValueError):
            counter_family("ok_total", "help", ("__reserved",))


class TestRegistryExposition:
    def test_content_type_constant(self):
        assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE

    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_hits_total", "Cache hits.")
        gauge = registry.gauge("t_entries", "Entries.")
        counter.inc(3)
        gauge.set(7)
        text = registry.exposition()
        assert "# HELP t_hits_total Cache hits." in text
        assert "# TYPE t_hits_total counter" in text
        assert "t_hits_total 3" in text
        assert "# TYPE t_entries gauge" in text
        assert "t_entries 7" in text
        assert validate_exposition(text) == []

    def test_histogram_exposition_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.exposition()
        assert 't_lat_seconds_bucket{le="0.1"} 1' in text
        assert 't_lat_seconds_bucket{le="1"} 2' in text
        assert 't_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "t_lat_seconds_count 3" in text
        assert validate_exposition(text) == []

    def test_help_and_label_escaping(self):
        registry = MetricsRegistry()
        fam = registry.counter(
            "t_esc_total", 'tricky help with \\ backslash\nand newline', ("who",)
        )
        fam.labels(who='quote " backslash \\ newline \n end').inc()
        text = registry.exposition()
        assert "# HELP t_esc_total tricky help with \\\\ backslash\\nand newline" in text
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_exposition(text) == []

    def test_extra_labels_merge_and_distinguish(self):
        registry = MetricsRegistry()
        fam_a = counter_family("t_shared_total", "Shared.", ())
        fam_b = counter_family("t_shared_total", "Shared.", ())
        fam_a.inc(1)
        fam_b.inc(2)
        registry.register(fam_a, {"index": "a"})
        registry.register(fam_b, {"index": "b"})
        text = registry.exposition()
        assert 't_shared_total{index="a"} 1' in text
        assert 't_shared_total{index="b"} 2' in text
        # HELP/TYPE appear once per name even with two registrants.
        assert text.count("# TYPE t_shared_total") == 1
        assert validate_exposition(text) == []

    def test_register_all_accepts_family_label_tuples(self):
        registry = MetricsRegistry()
        fam = counter_family("t_part_total", "Per partition.", ())
        fam.inc(4)
        registry.register_all([(fam, {"partition": "3"})], {"index": "fleet"})
        text = registry.exposition()
        assert 't_part_total{index="fleet",partition="3"} 4' in text

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t_conflict", "c")
        with pytest.raises(ValueError):
            registry.gauge("t_conflict", "g")

    def test_register_is_idempotent(self):
        registry = MetricsRegistry()
        fam = counter_family("t_idem_total", "i")
        fam.inc()
        registry.register(fam)
        registry.register(fam)
        assert registry.exposition().count("t_idem_total 1") == 1

    def test_disabled_family_skipped(self):
        registry = MetricsRegistry()
        registry.register(counter_family("t_gone_total", "x", enabled=False))
        assert registry.exposition() == ""

    def test_exposed_metric_names(self):
        registry = MetricsRegistry()
        registry.counter("t_one_total", "1")
        registry.histogram("t_two_seconds", "2")
        assert exposed_metric_names(registry.exposition()) == [
            "t_one_total",
            "t_two_seconds",
        ]

    def test_snapshot_mirrors_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_snap_total", "Snap.")
        hist = registry.histogram("t_snap_seconds", "Lat.")
        counter.inc(2)
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["t_snap_total"]["samples"][0]["value"] == 2
        hist_sample = snap["t_snap_seconds"]["samples"][0]
        assert hist_sample["count"] == 1
        assert "p99" in hist_sample

    def test_validator_flags_broken_payloads(self):
        assert validate_exposition("t_bad{unclosed 1\n") != []
        assert validate_exposition("no_type_declared 1\n") != []
        broken_hist = (
            "# TYPE t_h histogram\n"
            't_h_bucket{le="1"} 5\n'
            't_h_bucket{le="2"} 3\n'  # decreasing => not cumulative
            't_h_bucket{le="+Inf"} 5\n'
            "t_h_sum 1\n"
            "t_h_count 5\n"
        )
        assert any("cumulative" in p for p in validate_exposition(broken_hist))


class TestThreadSafety:
    def test_concurrent_counter_increments(self):
        # Mimics the real contention: event-loop thread + flusher executor
        # threads all hitting the same instruments.
        counter = Counter()
        hist = Histogram(buckets=(0.5, 1.0))
        threads_n, iterations = 8, 2500

        def hammer():
            for _ in range(iterations):
                counter.inc()
                hist.observe(0.75)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == threads_n * iterations
        assert hist.count == threads_n * iterations
        assert hist.cumulative_counts()[-1][1] == threads_n * iterations

    def test_concurrent_labels_resolution(self):
        fam = counter_family("t_conc_total", "c", ("worker",))
        errors: list[Exception] = []

        def hammer(worker_id: int):
            try:
                for _ in range(500):
                    fam.labels(worker=str(worker_id % 4)).inc()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = sum(child.value for _, child in fam.children())
        assert total == 8 * 500
