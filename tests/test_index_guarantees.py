"""Tests for the Lemma 2-7 guarantee arithmetic."""

import pytest

from repro import Aggregate
from repro.errors import QueryError
from repro.index import (
    CORNER_FACTORS,
    certified_absolute_bound,
    certify_relative,
    delta_for_absolute,
    delta_for_relative,
)
from repro.index.guarantees import corner_factor


class TestCornerFactors:
    def test_paper_values(self):
        assert CORNER_FACTORS[(Aggregate.SUM, 1)] == 2
        assert CORNER_FACTORS[(Aggregate.COUNT, 1)] == 2
        assert CORNER_FACTORS[(Aggregate.MAX, 1)] == 1
        assert CORNER_FACTORS[(Aggregate.MIN, 1)] == 1
        assert CORNER_FACTORS[(Aggregate.COUNT, 2)] == 4

    def test_unsupported_combination(self):
        with pytest.raises(QueryError):
            corner_factor(Aggregate.MAX, 2)


class TestDeltaForAbsolute:
    def test_lemma2_sum_count(self):
        assert delta_for_absolute(100.0, Aggregate.COUNT) == 50.0
        assert delta_for_absolute(100.0, Aggregate.SUM) == 50.0

    def test_lemma4_max_min(self):
        assert delta_for_absolute(100.0, Aggregate.MAX) == 100.0
        assert delta_for_absolute(100.0, Aggregate.MIN) == 100.0

    def test_lemma6_two_keys(self):
        assert delta_for_absolute(1000.0, Aggregate.COUNT, num_keys=2) == 250.0

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(QueryError):
            delta_for_absolute(0.0, Aggregate.COUNT)


class TestCertifiedBound:
    def test_bound_is_corner_factor_times_delta(self):
        assert certified_absolute_bound(50.0, Aggregate.COUNT) == 100.0
        assert certified_absolute_bound(50.0, Aggregate.MAX) == 50.0
        assert certified_absolute_bound(250.0, Aggregate.COUNT, num_keys=2) == 1000.0

    def test_rejects_negative_delta(self):
        with pytest.raises(QueryError):
            certified_absolute_bound(-1.0, Aggregate.COUNT)


class TestCertifyRelative:
    def test_lemma3_threshold(self):
        # threshold = 2 * delta * (1 + 1/eps)
        delta, eps = 50.0, 0.01
        threshold = 2 * delta * (1 + 1 / eps)
        assert certify_relative(threshold, delta, eps, Aggregate.COUNT)
        assert not certify_relative(threshold - 1, delta, eps, Aggregate.COUNT)

    def test_lemma5_threshold(self):
        delta, eps = 50.0, 0.01
        threshold = delta * (1 + 1 / eps)
        assert certify_relative(threshold, delta, eps, Aggregate.MAX)
        assert not certify_relative(threshold - 1, delta, eps, Aggregate.MAX)

    def test_lemma7_threshold(self):
        delta, eps = 250.0, 0.01
        threshold = 4 * delta * (1 + 1 / eps)
        assert certify_relative(threshold, delta, eps, Aggregate.COUNT, num_keys=2)
        assert not certify_relative(threshold - 1, delta, eps, Aggregate.COUNT, num_keys=2)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(QueryError):
            certify_relative(10.0, 1.0, 0.0, Aggregate.COUNT)

    def test_rejects_negative_delta(self):
        with pytest.raises(QueryError):
            certify_relative(10.0, -1.0, 0.1, Aggregate.COUNT)

    def test_certificate_implies_true_relative_error(self):
        """If the certificate holds then any exact value within the absolute
        bound is within the relative error (the content of Lemma 3)."""
        delta, eps = 25.0, 0.05
        approx = 2 * delta * (1 + 1 / eps) + 10.0
        assert certify_relative(approx, delta, eps, Aggregate.SUM)
        # Worst case exact value given |approx - exact| <= 2 delta.
        worst_exact = approx - 2 * delta
        assert abs(approx - worst_exact) / worst_exact <= eps + 1e-12


class TestDeltaForRelative:
    def test_derived_delta_certifies_expected_magnitude(self):
        eps = 0.01
        magnitude = 10_000.0
        delta = delta_for_relative(eps, Aggregate.COUNT, expected_magnitude=magnitude)
        assert certify_relative(magnitude, delta, eps, Aggregate.COUNT)

    def test_rejects_bad_arguments(self):
        with pytest.raises(QueryError):
            delta_for_relative(0.0, Aggregate.COUNT, expected_magnitude=1.0)
        with pytest.raises(QueryError):
            delta_for_relative(0.1, Aggregate.COUNT, expected_magnitude=0.0)
