"""Tests for the streaming write path: UpdatablePolyFitIndex and friends.

The correctness pins, in increasing strength:

* with a *non-empty* delta buffer, ``exact_batch`` equals a rebuild-from-
  scratch oracle exactly (COUNT integer-exact; SUM/MAX/MIN to float
  equality), and every estimate stays within the certified bound of the
  truth;
* after ``compact()``, segment boundaries are identical to a from-scratch
  :func:`~repro.fitting.segmentation.greedy_segmentation` build, and (for
  COUNT/MAX and append-only SUM) the whole index answers bit-identically to
  an index built from scratch over all records;
* the invariants survive interleaved inserts / queries / compactions with
  duplicate and out-of-order keys (hypothesis property test).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Aggregate,
    CompactionPolicy,
    Guarantee,
    PolyFitIndex,
    RangeQuery,
    UpdatablePolyFitIndex,
    load_index,
    save_index,
    save_index_binary,
)
from repro.config import FitConfig, IndexConfig
from repro.errors import DataError, QueryError
from repro.fitting.segmentation import greedy_segmentation
from repro.queries.engine import QueryEngine
from repro.queries.sharding import ShardedQueryEngine
from repro.queries.workloads import generate_range_queries
from repro.stream.buffer import DeltaBuffer


def _boundaries(segments):
    return [(s.start, s.stop, s.key_low, s.key_high) for s in segments]


def _config(degree: int) -> IndexConfig:
    return IndexConfig(fit=FitConfig(degree=degree))


def _count_oracle(all_keys: np.ndarray, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    return np.array(
        [
            float(np.count_nonzero((all_keys >= low) & (all_keys <= high)))
            for low, high in zip(lows, highs)
        ]
    )


def _bounds(rng, span, n):
    lows = rng.uniform(span[0] - 10, span[1] + 10, n)
    highs = lows + rng.uniform(0.0, (span[1] - span[0]) / 2, n)
    return lows, highs


class TestDeltaBuffer:
    def test_count_forces_unit_measures(self):
        buffer = DeltaBuffer(Aggregate.COUNT)
        buffer.insert([1.0, 2.0], measures=[7.0, 7.0])
        snapshot = buffer.snapshot()
        assert np.array_equal(snapshot.measures, [1.0, 1.0])

    def test_sum_requires_nonnegative_measures(self):
        buffer = DeltaBuffer(Aggregate.SUM)
        with pytest.raises(DataError):
            buffer.insert([1.0], measures=[-2.0])

    def test_extremes_require_measures(self):
        buffer = DeltaBuffer(Aggregate.MAX)
        with pytest.raises(DataError):
            buffer.insert([1.0])

    def test_rejects_non_finite(self):
        buffer = DeltaBuffer(Aggregate.COUNT)
        with pytest.raises(DataError):
            buffer.insert([np.nan])

    def test_empty_insert_is_noop(self):
        buffer = DeltaBuffer(Aggregate.COUNT)
        assert buffer.insert(np.array([])) == 0
        assert buffer.is_empty

    def test_snapshot_cached_until_mutation(self):
        buffer = DeltaBuffer(Aggregate.COUNT)
        buffer.insert([3.0, 1.0])
        first = buffer.snapshot()
        assert buffer.snapshot() is first
        assert np.array_equal(first.keys, [1.0, 3.0])
        buffer.insert([2.0])
        assert buffer.snapshot() is not first

    def test_contribution_inclusive_bounds(self):
        buffer = DeltaBuffer(Aggregate.COUNT)
        buffer.insert([1.0, 2.0, 2.0, 3.0])
        snapshot = buffer.snapshot()
        assert snapshot.contribution_batch([2.0], [2.0])[0] == 2.0
        assert snapshot.contribution_batch([1.0], [3.0])[0] == 4.0
        assert snapshot.contribution_batch([3.5], [4.0])[0] == 0.0


class TestAppendOnly:
    @pytest.mark.parametrize("degree", [0, 1, 2])
    def test_compaction_matches_from_scratch(self, degree):
        rng = np.random.default_rng(10 + degree)
        keys = np.sort(rng.uniform(0, 1000, 2500))
        index = UpdatablePolyFitIndex.build(
            keys,
            aggregate=Aggregate.COUNT,
            delta=25.0,
            config=_config(degree),
            policy=CompactionPolicy(auto=False),
        )
        seen = [keys]
        last = float(keys[-1])
        # Several epochs so the degree-1 path exercises the corridor resume.
        for _ in range(3):
            fresh = np.sort(rng.uniform(last + 0.01, last + 400, 700))
            last = float(fresh[-1])
            seen.append(fresh)
            index.insert(fresh)
            all_keys = np.concatenate(seen)
            lows, highs = _bounds(rng, (0.0, last), 150)
            # Non-empty buffer: exact matches the oracle exactly, estimates
            # stay within the certified bound.
            assert index.buffer_size > 0
            assert np.array_equal(
                index.exact_batch(lows, highs), _count_oracle(all_keys, lows, highs)
            )
            errors = np.abs(
                index.estimate_batch(lows, highs) - _count_oracle(all_keys, lows, highs)
            )
            assert np.all(errors <= index.certified_bound + 1e-9)
            index.compact()
            assert index.buffer_size == 0
            scratch = PolyFitIndex.build(
                all_keys, aggregate=Aggregate.COUNT, delta=25.0, config=_config(degree)
            )
            assert _boundaries(index.segments) == _boundaries(scratch.segments)
            assert np.array_equal(
                index.estimate_batch(lows, highs), scratch.estimate_batch(lows, highs)
            )

    def test_sum_append_bit_identical(self):
        rng = np.random.default_rng(21)
        keys = np.sort(rng.uniform(0, 500, 2000))
        measures = rng.uniform(0, 10, 2000)
        index = UpdatablePolyFitIndex.build(
            keys,
            measures,
            aggregate=Aggregate.SUM,
            delta=50.0,
            config=_config(1),
            policy=CompactionPolicy(auto=False),
        )
        fresh = np.sort(rng.uniform(500.01, 900, 800))
        fresh_measures = rng.uniform(0, 10, 800)
        index.insert(fresh, fresh_measures)
        index.compact()
        scratch = PolyFitIndex.build(
            np.concatenate([keys, fresh]),
            np.concatenate([measures, fresh_measures]),
            aggregate=Aggregate.SUM,
            delta=50.0,
            config=_config(1),
        )
        function = index.base._cumulative  # noqa: SLF001
        oracle_function = scratch._cumulative  # noqa: SLF001
        assert np.array_equal(function.values, oracle_function.values)
        assert _boundaries(index.segments) == _boundaries(scratch.segments)

    def test_scanner_resumes_across_epochs(self):
        rng = np.random.default_rng(22)
        keys = np.sort(rng.uniform(0, 100, 1500))
        index = UpdatablePolyFitIndex.build(
            keys,
            aggregate=Aggregate.COUNT,
            delta=15.0,
            config=_config(1),
            policy=CompactionPolicy(auto=False),
        )
        last = float(keys[-1])
        index.insert(np.sort(rng.uniform(last + 0.01, last + 40, 400)))
        index.compact()
        scanner = index._scanner  # noqa: SLF001
        assert scanner is not None and scanner.alive
        last = float(index.base._cumulative.keys[-1])  # noqa: SLF001
        index.insert(np.sort(rng.uniform(last + 0.01, last + 40, 400)))
        index.compact()
        # The retained scanner covers the open last segment of the new base.
        assert index._scanner is not None  # noqa: SLF001
        assert index._scanner_start == index.segments[-1].start  # noqa: SLF001


class TestOutOfOrderAndDuplicates:
    @pytest.mark.parametrize("degree", [0, 1, 2])
    def test_count_matches_from_scratch(self, degree):
        rng = np.random.default_rng(30 + degree)
        keys = np.sort(rng.uniform(0, 1000, 1500))
        index = UpdatablePolyFitIndex.build(
            keys,
            aggregate=Aggregate.COUNT,
            delta=20.0,
            config=_config(degree),
            policy=CompactionPolicy(auto=False),
        )
        inserted = np.concatenate(
            [
                rng.uniform(-50, 1100, 400),  # out of order, partly out of span
                rng.choice(keys, 80),  # exact duplicates of base keys
            ]
        )
        index.insert(inserted)
        all_keys = np.concatenate([keys, inserted])
        lows, highs = _bounds(rng, (-50.0, 1100.0), 200)
        assert np.array_equal(
            index.exact_batch(lows, highs), _count_oracle(all_keys, lows, highs)
        )
        index.compact()
        scratch = PolyFitIndex.build(
            all_keys, aggregate=Aggregate.COUNT, delta=20.0, config=_config(degree)
        )
        assert _boundaries(index.segments) == _boundaries(scratch.segments)
        assert np.array_equal(
            index.estimate_batch(lows, highs), scratch.estimate_batch(lows, highs)
        )

    def test_sum_out_of_order_boundaries_match_merged_function(self):
        rng = np.random.default_rng(41)
        keys = rng.uniform(0, 300, 1200)
        measures = rng.uniform(0, 5, 1200)
        index = UpdatablePolyFitIndex.build(
            keys,
            measures,
            aggregate=Aggregate.SUM,
            delta=30.0,
            config=_config(1),
            policy=CompactionPolicy(auto=False),
        )
        index.insert(rng.uniform(-20, 320, 300), rng.uniform(0, 5, 300))
        index.compact()
        function = index.base._cumulative  # noqa: SLF001
        reference = greedy_segmentation(function.keys, function.values, delta=30.0, degree=1)
        assert _boundaries(index.segments) == _boundaries(reference)

    def test_prefix_segments_are_reused(self):
        """An insert near the end must not re-fit the early segments."""
        rng = np.random.default_rng(42)
        keys = np.sort(rng.uniform(0, 1000, 3000))
        index = UpdatablePolyFitIndex.build(
            keys,
            aggregate=Aggregate.COUNT,
            delta=10.0,
            config=_config(1),
            policy=CompactionPolicy(auto=False),
        )
        before = index.segments
        assert len(before) > 4
        index.insert(np.array([999.5]))
        index.compact()
        after = index.segments
        # Everything up to the segment containing the touched key is the
        # *same object* — reused, not re-derived.
        reused = sum(1 for a, b in zip(after, before) if a is b)
        assert reused >= len(before) - 2


class TestExtremes:
    @pytest.mark.parametrize("aggregate", [Aggregate.MAX, Aggregate.MIN])
    def test_combined_queries_and_compaction(self, aggregate):
        rng = np.random.default_rng(50)
        keys = np.sort(rng.uniform(0, 100, 1200))
        measures = rng.normal(100, 15, 1200)
        index = UpdatablePolyFitIndex.build(
            keys,
            measures,
            aggregate=aggregate,
            delta=8.0,
            config=_config(1),
            policy=CompactionPolicy(auto=False),
        )
        fresh = rng.uniform(-10, 130, 350)
        fresh_measures = rng.normal(100, 15, 350)
        index.insert(fresh, fresh_measures)
        all_keys = np.concatenate([keys, fresh])
        all_measures = np.concatenate([measures, fresh_measures])
        reduce = np.max if aggregate is Aggregate.MAX else np.min

        lows, highs = _bounds(rng, (-10.0, 130.0), 200)
        exact = index.exact_batch(lows, highs)
        estimates = index.estimate_batch(lows, highs)
        for i, (low, high) in enumerate(zip(lows, highs)):
            window = all_measures[(all_keys >= low) & (all_keys <= high)]
            if window.size == 0:
                assert np.isnan(exact[i]) and np.isnan(estimates[i])
            else:
                truth = float(reduce(window))
                assert exact[i] == truth
                assert abs(estimates[i] - truth) <= index.certified_bound + 1e-9

        index.compact()
        scratch = PolyFitIndex.build(
            all_keys, all_measures, aggregate=aggregate, delta=8.0, config=_config(1)
        )
        assert _boundaries(index.segments) == _boundaries(scratch.segments)
        assert np.array_equal(
            index.estimate_batch(lows, highs),
            scratch.estimate_batch(lows, highs),
            equal_nan=True,
        )

    def test_dominated_duplicate_keeps_base(self):
        rng = np.random.default_rng(51)
        keys = np.sort(rng.uniform(0, 100, 500))
        measures = rng.uniform(50, 60, 500)
        index = UpdatablePolyFitIndex.build(
            keys, measures, aggregate=Aggregate.MAX, delta=5.0,
            config=_config(1), policy=CompactionPolicy(auto=False),
        )
        before = _boundaries(index.segments)
        # A dominated measure at an existing key leaves the function as-is.
        index.insert(np.array([keys[100]]), np.array([0.0]))
        assert index.compact()
        assert _boundaries(index.segments) == before
        assert index.buffer_size == 0
        assert index.epoch == 1


class TestGuaranteesAndPolicy:
    def test_relative_guarantee_falls_back_exactly(self):
        rng = np.random.default_rng(60)
        keys = np.sort(rng.uniform(0, 1000, 3000))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=50.0,
            policy=CompactionPolicy(auto=False),
        )
        index.insert(rng.uniform(0, 1000, 200))
        lows, highs = _bounds(rng, (0.0, 1000.0), 100)
        result = index.query_batch(lows, highs, Guarantee.relative(0.01))
        exact = index.exact_batch(lows, highs)
        assert np.all(result.guaranteed)
        assert np.array_equal(result.values[result.exact_fallback],
                              exact[result.exact_fallback])
        relative = np.abs(result.values - exact) / np.maximum(np.abs(exact), 1e-12)
        assert np.all(relative[exact != 0] <= 0.01 + 1e-9)

    def test_absolute_guarantee_flags(self):
        rng = np.random.default_rng(61)
        keys = np.sort(rng.uniform(0, 100, 500))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=10.0,
            policy=CompactionPolicy(auto=False),
        )
        index.insert(np.array([200.0]))
        query = RangeQuery(10.0, 90.0, Aggregate.COUNT)
        assert index.query(query, Guarantee.absolute(50.0)).guaranteed
        assert not index.query(query, Guarantee.absolute(1e-6)).guaranteed

    def test_auto_compaction_threshold(self):
        rng = np.random.default_rng(62)
        keys = np.sort(rng.uniform(0, 100, 400))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=10.0,
            policy=CompactionPolicy(max_buffer=100, auto=True),
        )
        index.insert(rng.uniform(100, 110, 99))
        assert index.epoch == 0 and index.buffer_size == 99
        index.insert(rng.uniform(110, 111, 1))
        assert index.epoch == 1 and index.buffer_size == 0

    def test_max_fraction_threshold(self):
        policy = CompactionPolicy(max_buffer=10_000, max_fraction=0.1)
        assert policy.threshold(100) == 10
        assert policy.should_compact(10, 100)
        assert not policy.should_compact(9, 100)

    def test_policy_validation(self):
        with pytest.raises(QueryError):
            CompactionPolicy(max_buffer=0)
        with pytest.raises(QueryError):
            CompactionPolicy(max_fraction=-1.0)


class TestSnapshotOverlay:
    def test_snapshot_is_frozen(self):
        rng = np.random.default_rng(70)
        keys = np.sort(rng.uniform(0, 100, 800))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=10.0,
            policy=CompactionPolicy(auto=False),
        )
        index.insert(np.array([200.0, 201.0]))
        overlay = index.snapshot()
        lows, highs = np.array([0.0]), np.array([300.0])
        before = overlay.exact_batch(lows, highs).copy()
        index.insert(np.array([202.0, 203.0]))
        # The old overlay still answers from its epoch ...
        assert np.array_equal(overlay.exact_batch(lows, highs), before)
        # ... while the index's current snapshot sees the new records.
        assert index.exact_batch(lows, highs)[0] == before[0] + 2

    def test_overlay_epoch_and_aggregate_guard(self):
        rng = np.random.default_rng(71)
        keys = np.sort(rng.uniform(0, 100, 300))
        index = UpdatablePolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=10.0)
        overlay = index.snapshot()
        assert overlay.epoch == index.epoch
        with pytest.raises(Exception):
            overlay.query(RangeQuery(0, 1, Aggregate.MAX))


class TestPersistence:
    @pytest.mark.parametrize("format", ["binary", "json"])
    def test_round_trip_preserves_snapshot(self, tmp_path, format):
        rng = np.random.default_rng(80)
        keys = np.sort(rng.uniform(0, 500, 1200))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=25.0,
            policy=CompactionPolicy(max_buffer=5000, max_fraction=0.5, auto=False),
        )
        index.insert(rng.uniform(400, 900, 300))
        index.compact()
        index.insert(rng.uniform(0, 900, 150))

        path = tmp_path / ("u.pfbin" if format == "binary" else "u.json")
        if format == "binary":
            save_index_binary(index, path)
        else:
            save_index(index, path, format="json")
        clone = load_index(path)
        assert isinstance(clone, UpdatablePolyFitIndex)
        assert clone.epoch == index.epoch
        assert clone.buffer_size == index.buffer_size
        assert clone.policy == index.policy
        lows, highs = _bounds(rng, (0.0, 900.0), 120)
        assert np.array_equal(
            clone.estimate_batch(lows, highs), index.estimate_batch(lows, highs)
        )
        assert np.array_equal(
            clone.exact_batch(lows, highs), index.exact_batch(lows, highs)
        )

    def test_sharded_workers_share_persisted_snapshot(self, tmp_path):
        rng = np.random.default_rng(81)
        keys = np.sort(rng.uniform(0, 500, 1500))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=25.0,
            policy=CompactionPolicy(auto=False),
        )
        index.insert(rng.uniform(0, 700, 400))
        path = tmp_path / "u.pfbin"
        save_index_binary(index, path)
        lows, highs = _bounds(rng, (0.0, 700.0), 2000)
        reference = index.estimate_batch(lows, highs)
        with ShardedQueryEngine.from_path(
            path, num_shards=2, executor="thread", min_queries_per_shard=1
        ) as engine:
            assert np.array_equal(engine.estimate_batch(lows, highs), reference)


class TestEngineIntegration:
    def test_for_index_detects_updatable_batch(self):
        rng = np.random.default_rng(90)
        keys = np.sort(rng.uniform(0, 1000, 2000))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=50.0,
            policy=CompactionPolicy(auto=False),
        )
        index.insert(rng.uniform(0, 1000, 100))
        queries = generate_range_queries(keys, 50, Aggregate.COUNT, seed=9)
        with QueryEngine.for_index(index, name="updatable") as engine:
            assert engine.supports_batch
            batch = engine.run(queries)
            scalar = engine.run(queries, prefer_batch=False)
            for (batch_result, batch_exact), (scalar_result, scalar_exact) in zip(
                batch, scalar
            ):
                assert batch_result.value == scalar_result.value
                assert batch_exact == scalar_exact

    def test_sharded_engine_pins_snapshot(self):
        rng = np.random.default_rng(91)
        keys = np.sort(rng.uniform(0, 1000, 2000))
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=50.0,
            policy=CompactionPolicy(auto=False),
        )
        index.insert(rng.uniform(0, 1000, 100))
        queries = generate_range_queries(keys, 40, Aggregate.COUNT, seed=10)
        with QueryEngine.for_index(index, num_shards=2) as engine:
            before = [result.value for result, _ in engine.run(queries)]
            # Later inserts do not leak into the engine's pinned epoch —
            # neither through the batch path nor the scalar oracle path.
            index.insert(rng.uniform(0, 1000, 500))
            after = [result.value for result, _ in engine.run(queries)]
            assert before == after
            scalar = [
                result.value
                for result, _ in engine.run(queries, prefer_batch=False)
            ]
            assert scalar == before
        live = [result.value for result, _ in QueryEngine.for_index(index).run(queries)]
        assert live != before


# ----------------------------------------------------------------------- #
# Property test: interleaved inserts / queries / compactions vs an oracle
# ----------------------------------------------------------------------- #

_chunks = st.lists(
    st.tuples(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False,
                      allow_infinity=False),
            min_size=1,
            max_size=12,
        ),
        st.booleans(),  # compact after this chunk?
    ),
    min_size=1,
    max_size=6,
)


class TestPropertyOracle:
    @settings(max_examples=40, deadline=None)
    @given(chunks=_chunks, degree=st.integers(min_value=0, max_value=2),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_interleaved_matches_rebuild_oracle(self, chunks, degree, seed):
        rng = np.random.default_rng(seed)
        base_keys = np.sort(rng.uniform(-100, 100, 60))
        delta = 3.0
        index = UpdatablePolyFitIndex.build(
            base_keys,
            aggregate=Aggregate.COUNT,
            delta=delta,
            config=_config(degree),
            policy=CompactionPolicy(auto=False),
        )
        seen = [base_keys]
        lows = np.array([-150.0, -40.0, 0.0, 17.3])
        highs = np.array([150.0, 40.0, 0.0, 92.1])
        for inserted, do_compact in chunks:
            inserted = np.asarray(inserted, dtype=np.float64)
            index.insert(inserted)
            seen.append(inserted)
            all_keys = np.concatenate(seen)
            assert np.array_equal(
                index.exact_batch(lows, highs), _count_oracle(all_keys, lows, highs)
            )
            errors = np.abs(
                index.estimate_batch(lows, highs) - _count_oracle(all_keys, lows, highs)
            )
            assert np.all(errors <= index.certified_bound + 1e-9)
            if do_compact:
                index.compact()
                scratch = PolyFitIndex.build(
                    all_keys,
                    aggregate=Aggregate.COUNT,
                    delta=delta,
                    config=_config(degree),
                )
                assert _boundaries(index.segments) == _boundaries(scratch.segments)
                assert np.array_equal(
                    index.estimate_batch(lows, highs),
                    scratch.estimate_batch(lows, highs),
                )
