"""Bit-identity of the fused kernels against the NumPy batch paths.

The kernel *source* functions in ``repro.kernels.fused1d`` / ``fused2d``
are plain Python replicating the NumPy path's floating-point operations
element for element, so they can be pinned bit-identical (``array_equal``,
no tolerance) by running them uncompiled — ``compiled=False`` — even where
numba is not installed.  When numba *is* importable, the same pins run a
second time against the actually-compiled kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Aggregate, Guarantee, PolyFitIndex, PolyFit2DIndex
from repro.errors import QueryError
from repro.kernels import KERNEL_CHOICES, NUMBA_AVAILABLE, resolve_kernel, runtime_info
from repro.kernels import fused1d, fused2d
from repro.stream.updatable import UpdatablePolyFitIndex

COMPILED_MODES = [False, True] if NUMBA_AVAILABLE else [False]


def _bounds_strategy(num=st.integers(min_value=1, max_value=40)):
    return num.flatmap(
        lambda n: st.lists(
            st.tuples(
                st.floats(min_value=-200.0, max_value=1200.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        )
    )


def _to_arrays(pairs):
    lows = np.array([low for low, _ in pairs], dtype=np.float64)
    spans = np.array([span for _, span in pairs], dtype=np.float64)
    return lows, lows + spans


class TestKernelSelection:
    def test_resolve_auto_matches_availability(self):
        assert resolve_kernel("auto") == ("numba" if NUMBA_AVAILABLE else "numpy")

    def test_resolve_numpy_is_always_valid(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_unknown_choice_rejected(self):
        with pytest.raises(QueryError):
            resolve_kernel("cython")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs a numba-less environment")
    def test_numba_without_numba_rejected(self):
        with pytest.raises(QueryError):
            resolve_kernel("numba")

    def test_runtime_info_shape(self):
        info = runtime_info()
        assert set(info) == {"numba_available", "numba_version", "default_kernel"}
        assert info["default_kernel"] in KERNEL_CHOICES

    def test_index_set_kernel_validates(self, count_index):
        with pytest.raises(QueryError):
            count_index.set_kernel("bogus")
        count_index.set_kernel("numpy")
        assert count_index.kernel == "numpy"
        count_index.set_kernel("auto")


class TestFused1D:
    """The 1-D cumulative/extreme kernels against the multi-pass NumPy path."""

    @pytest.fixture(scope="class", params=["count", "sum", "max", "min"])
    def index(self, request, tweet_small, hki_small):
        if request.param in ("count", "sum"):
            keys, _ = tweet_small
            measures = None if request.param == "count" else np.abs(np.sin(keys)) * 7.0
            aggregate = Aggregate.COUNT if request.param == "count" else Aggregate.SUM
        else:
            keys, measures = hki_small
            aggregate = Aggregate.MAX if request.param == "max" else Aggregate.MIN
        return PolyFitIndex.build(keys, measures, aggregate, delta=40.0)

    @pytest.mark.parametrize("compiled", COMPILED_MODES)
    @settings(max_examples=25, deadline=None)
    @given(pairs=_bounds_strategy())
    def test_estimates_bit_identical(self, index, compiled, pairs):
        lows, highs = _to_arrays(pairs)
        reference = index._estimate_batch_validated_numpy(lows, highs)
        fused, _ = index._fused_batch(lows, highs, np.inf, compiled=compiled)
        assert np.array_equal(reference, fused, equal_nan=True)

    @pytest.mark.parametrize("compiled", COMPILED_MODES)
    @settings(max_examples=15, deadline=None)
    @given(pairs=_bounds_strategy(), eps=st.floats(min_value=0.01, max_value=1.0))
    def test_certificates_bit_identical(self, index, compiled, pairs, eps):
        lows, highs = _to_arrays(pairs)
        reference = index._estimate_batch_validated_numpy(lows, highs)
        threshold = index.certified_bound * (1.0 + 1.0 / eps)
        _, certified = index._fused_batch(lows, highs, threshold, compiled=compiled)
        with np.errstate(invalid="ignore"):
            expected = reference >= threshold
        assert np.array_equal(expected, certified)

    def test_degenerate_and_out_of_domain(self, index):
        span = index._key_span()
        lo, hi = span
        lows = np.array([lo - 100.0, hi + 1.0, lo, lo, hi])
        highs = np.array([lo - 50.0, hi + 2.0, lo, hi, hi])
        reference = index._estimate_batch_validated_numpy(lows, highs)
        fused, _ = index._fused_batch(lows, highs, np.inf, compiled=False)
        assert np.array_equal(reference, fused, equal_nan=True)

    def test_query_batch_numpy_vs_kernel_dispatch(self, index):
        rng = np.random.default_rng(17)
        lo, hi = index._key_span()
        lows = rng.uniform(lo - 10, hi, 300)
        highs = lows + rng.uniform(0, (hi - lo) / 3, 300)
        index.set_kernel("numpy")
        by_numpy = index.query_batch(lows, highs, Guarantee.relative(0.1))
        if NUMBA_AVAILABLE:
            index.set_kernel("numba")
            by_numba = index.query_batch(lows, highs, Guarantee.relative(0.1))
            index.set_kernel("auto")
            assert np.array_equal(by_numpy.values, by_numba.values, equal_nan=True)
            assert np.array_equal(by_numpy.exact_fallback, by_numba.exact_fallback)


class TestFused1DDelta:
    """Kernel dispatch under a non-empty delta buffer (overlay path)."""

    def test_overlay_matches_scalar_after_inserts(self, tweet_small):
        keys, _ = tweet_small
        index = UpdatablePolyFitIndex.build(keys, delta=40.0)
        rng = np.random.default_rng(23)
        index.insert(rng.uniform(keys.min(), keys.max(), 200))
        lows = rng.uniform(keys.min(), keys.max(), 500)
        highs = lows + rng.uniform(0, 20, 500)
        combined = index.estimate_batch(lows, highs)
        # The overlay adds the buffer's exact contribution on top of the
        # base estimate; pin that decomposition through the kernel path too.
        base = index.base._estimate_batch_validated_numpy(lows, highs)
        fused_base, _ = index.base._fused_batch(lows, highs, np.inf, compiled=False)
        assert np.array_equal(base, fused_base, equal_nan=True)
        delta_part = combined - base
        assert np.all(delta_part >= 0)


class TestFused2D:
    """The fused 4-corner kernel against the tiled NumPy evaluation."""

    @pytest.fixture(scope="class")
    def clustered_index(self):
        rng = np.random.default_rng(29)
        xs = np.concatenate(
            [rng.normal(0, 1, 3000), rng.normal(15, 0.4, 3000), rng.uniform(-20, 30, 1500)]
        )
        ys = np.concatenate(
            [rng.normal(4, 1, 3000), rng.normal(-10, 0.6, 3000), rng.uniform(-15, 15, 1500)]
        )
        return PolyFit2DIndex.build(xs, ys, delta=80.0, grid_resolution=64)

    @pytest.mark.parametrize("compiled", COMPILED_MODES)
    @settings(max_examples=20, deadline=None)
    @given(pairs=_bounds_strategy(st.integers(min_value=1, max_value=20)))
    def test_corners_bit_identical(self, clustered_index, compiled, pairs):
        lows, highs = _to_arrays(pairs)
        scale = 30.0 / 1400.0
        x_lows = lows * scale - 20.0
        x_highs = highs * scale - 20.0
        y_lows = lows * scale - 15.0
        y_highs = highs * scale - 15.0
        reference = clustered_index._estimate_batch_numpy(x_lows, x_highs, y_lows, y_highs)
        fused, _ = clustered_index._fused_batch(
            x_lows, x_highs, y_lows, y_highs, np.inf, compiled=compiled
        )
        assert np.array_equal(reference, fused, equal_nan=True)

    def test_descent_fallback_matches(self, clustered_index):
        directory = clustered_index.directory
        rng = np.random.default_rng(31)
        x_lows = rng.uniform(-20, 25, 400)
        x_highs = x_lows + rng.uniform(0, 15, 400)
        y_lows = rng.uniform(-15, 10, 400)
        y_highs = y_lows + rng.uniform(0, 10, 400)
        reference = clustered_index._estimate_batch_numpy(x_lows, x_highs, y_lows, y_highs)
        saved = directory._x_boundaries, directory._y_boundaries
        saved_payload = clustered_index._kernel_payload_cache
        try:
            directory._x_boundaries = None
            directory._y_boundaries = None
            clustered_index._kernel_payload_cache = None
            fused, _ = clustered_index._fused_batch(
                x_lows, x_highs, y_lows, y_highs, np.inf, compiled=False
            )
        finally:
            directory._x_boundaries, directory._y_boundaries = saved
            clustered_index._kernel_payload_cache = saved_payload
        assert np.array_equal(reference, fused, equal_nan=True)

    def test_deep_tree_falls_back_to_numpy(self, clustered_index):
        directory = clustered_index.directory
        saved = directory.depth
        try:
            directory.depth = 32
            assert clustered_index.kernel == "numpy"
        finally:
            directory.depth = saved

    def test_2d_query_batch_dispatch(self, clustered_index):
        rng = np.random.default_rng(37)
        x_lows = rng.uniform(-20, 25, 300)
        x_highs = x_lows + rng.uniform(0, 20, 300)
        y_lows = rng.uniform(-15, 10, 300)
        y_highs = y_lows + rng.uniform(0, 15, 300)
        clustered_index.set_kernel("numpy")
        by_numpy = clustered_index.query_batch(
            x_lows, x_highs, y_lows, y_highs, Guarantee.relative(0.1)
        )
        if NUMBA_AVAILABLE:
            clustered_index.set_kernel("numba")
            by_numba = clustered_index.query_batch(
                x_lows, x_highs, y_lows, y_highs, Guarantee.relative(0.1)
            )
            clustered_index.set_kernel("auto")
            assert np.array_equal(by_numpy.values, by_numba.values, equal_nan=True)
            assert np.array_equal(by_numpy.exact_fallback, by_numba.exact_fallback)


class TestRectangleExtremeKernel:
    """The compiled x-window scan against the level-table extreme tree."""

    @pytest.mark.parametrize("maximize", [True, False])
    @pytest.mark.parametrize("compiled", COMPILED_MODES)
    def test_scan_matches_tree(self, maximize, compiled):
        rng = np.random.default_rng(41)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        measures = rng.normal(0, 50, 3000)
        order = np.argsort(xs, kind="stable")
        xs_sorted = xs[order]
        ys_sorted = ys[order]
        ms_sorted = measures[order]
        x_lows = rng.uniform(-10, 100, 800)
        x_highs = x_lows + rng.uniform(0, 40, 800)
        y_lows = rng.uniform(-10, 100, 800)
        y_highs = y_lows + rng.uniform(0, 40, 800)
        got = fused2d.run_rectangle_extreme(
            xs_sorted, ys_sorted, ms_sorted, maximize,
            x_lows, x_highs, y_lows, y_highs, compiled=compiled,
        )
        reduce = np.max if maximize else np.min
        for i in range(x_lows.size):
            inside = (
                (xs >= x_lows[i]) & (xs <= x_highs[i])
                & (ys >= y_lows[i]) & (ys <= y_highs[i])
            )
            expected = float(reduce(measures[inside])) if inside.any() else float("nan")
            assert np.array_equal(got[i], expected, equal_nan=True)


class TestFused1DSources:
    """Direct pins of the plain-Python kernel sources' bisection semantics."""

    def test_bisect_matches_searchsorted_with_nan(self):
        keys = np.array([1.0, 2.0, 2.0, 5.0, np.nan])
        probes = [0.5, 1.0, 2.0, 3.0, 5.0, 6.0, np.nan]
        for probe in probes:
            left = fused1d._bisect_left(keys, probe)
            right = fused1d._bisect_right(keys, probe)
            assert left == int(np.searchsorted(keys, probe, side="left"))
            assert right == int(np.searchsorted(keys, probe, side="right"))
