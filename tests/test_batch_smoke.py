"""Tier-1 smoke check for the batch query subsystem's throughput.

A perf regression that silently reverts the batch path to per-query work
would still pass the equivalence tests, so this smoke check asserts a very
conservative speedup floor (the real factor is 50-100x; 3x holds even on a
heavily loaded CI machine) on a workload small enough to finish in a few
seconds.  Run together with the equivalence tests via ``make smoke-batch``.
"""

from __future__ import annotations

import numpy as np

from repro import Aggregate, Guarantee, PolyFitIndex, generate_range_queries
from repro.bench import time_batch_per_query_ns, time_per_query_ns

SMOKE_QUERIES = 5_000
MIN_SPEEDUP = 3.0


def test_batch_throughput_smoke(tweet_small):
    """query_batch is comfortably faster than the scalar loop, same answers."""
    keys, _ = tweet_small
    index = PolyFitIndex.build(keys, aggregate=Aggregate.COUNT, delta=50.0)
    guarantee = Guarantee.relative(0.01)
    queries = generate_range_queries(keys, SMOKE_QUERIES, Aggregate.COUNT, seed=77)
    lows = np.fromiter((q.low for q in queries), dtype=np.float64, count=SMOKE_QUERIES)
    highs = np.fromiter((q.high for q in queries), dtype=np.float64, count=SMOKE_QUERIES)

    scalar = time_per_query_ns(
        lambda q: index.query(q, guarantee), queries, repeats=1, method="scalar", warmup=False
    )
    batch = time_batch_per_query_ns(
        lambda: index.query_batch(lows, highs, guarantee),
        SMOKE_QUERIES,
        repeats=2,
        method="batch",
    )
    speedup = scalar.per_query_ns / batch.per_query_ns
    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.1f}x faster than scalar (floor {MIN_SPEEDUP}x); "
        "did the batch path regress to per-query work?"
    )

    scalar_values = np.array([index.query(q, guarantee).value for q in queries])
    batch_values = index.query_batch(lows, highs, guarantee).values
    assert np.allclose(scalar_values, batch_values)


def test_batch_throughput_smoke_2d(count2d_index, osm_small):
    """2-D query_batch beats the per-query corner descent, same answers.

    The batch path must stay on the linearized leaf directory (pure NumPy);
    a regression to per-corner Python work would show up here as the speedup
    collapsing toward 1x.
    """
    xs, ys = osm_small
    from repro import generate_rectangle_queries
    from repro.queries import queries_to_bounds

    queries = generate_rectangle_queries(xs, ys, SMOKE_QUERIES, seed=79)
    bounds = queries_to_bounds(queries)

    scalar = time_per_query_ns(
        lambda q: count2d_index.query(q).value,
        queries[:1500],
        repeats=1,
        method="scalar-2d",
        warmup=False,
    )
    batch = time_batch_per_query_ns(
        lambda: count2d_index.query_batch(*bounds),
        SMOKE_QUERIES,
        repeats=2,
        method="batch-2d",
    )
    speedup = scalar.per_query_ns / batch.per_query_ns
    assert speedup >= MIN_SPEEDUP, (
        f"2-D batch path only {speedup:.1f}x faster than scalar (floor {MIN_SPEEDUP}x); "
        "did corner location regress to per-query descent?"
    )

    scalar_values = np.array([count2d_index.query(q).value for q in queries[:1500]])
    batch_values = count2d_index.query_batch(*bounds).values
    assert np.allclose(scalar_values, batch_values[:1500])
