"""Tests for histogram estimators (equi-width and entropy-based)."""

import numpy as np
import pytest

from repro import Aggregate
from repro.baselines import EntropyHistogram, EquiWidthHistogram
from repro.errors import DataError, NotSupportedError, QueryError


class TestEquiWidthHistogram:
    def test_total_mass_preserved(self):
        rng = np.random.default_rng(0)
        keys = rng.uniform(0, 100, size=5000)
        hist = EquiWidthHistogram(keys, num_buckets=32)
        assert hist.masses.sum() == pytest.approx(5000.0)

    def test_full_domain_query(self):
        rng = np.random.default_rng(1)
        keys = rng.uniform(0, 10, size=1000)
        hist = EquiWidthHistogram(keys, num_buckets=16)
        assert hist.range_estimate(keys.min() - 1, keys.max() + 1) == pytest.approx(1000.0)

    def test_uniform_data_accurate(self):
        rng = np.random.default_rng(2)
        keys = rng.uniform(0, 100, size=50_000)
        hist = EquiWidthHistogram(keys, num_buckets=100)
        exact = np.count_nonzero((keys >= 25) & (keys <= 75))
        assert abs(hist.range_estimate(25.0, 75.0) - exact) / exact < 0.02

    def test_sum_mode(self):
        keys = np.array([1.0, 2.0, 3.0, 4.0])
        measures = np.array([10.0, 20.0, 30.0, 40.0])
        hist = EquiWidthHistogram(keys, measures, num_buckets=2, aggregate=Aggregate.SUM)
        assert hist.masses.sum() == pytest.approx(100.0)

    def test_single_bucket(self):
        keys = np.linspace(0, 10, 100)
        hist = EquiWidthHistogram(keys, num_buckets=1)
        assert hist.num_buckets == 1

    def test_degenerate_single_key(self):
        hist = EquiWidthHistogram(np.full(10, 5.0), num_buckets=4)
        assert hist.range_estimate(0.0, 10.0) == pytest.approx(10.0)

    def test_invalid_range(self):
        hist = EquiWidthHistogram(np.linspace(0, 1, 10), num_buckets=2)
        with pytest.raises(QueryError):
            hist.range_estimate(1.0, 0.0)

    def test_parameter_validation(self):
        with pytest.raises(DataError):
            EquiWidthHistogram(np.array([]), num_buckets=4)
        with pytest.raises(DataError):
            EquiWidthHistogram(np.array([1.0]), num_buckets=0)
        with pytest.raises(NotSupportedError):
            EquiWidthHistogram(np.array([1.0]), np.array([1.0]), aggregate=Aggregate.MAX)

    def test_size_in_bytes(self):
        hist = EquiWidthHistogram(np.linspace(0, 1, 100), num_buckets=8)
        assert hist.size_in_bytes() > 0


class TestEntropyHistogram:
    def test_total_mass_preserved(self):
        rng = np.random.default_rng(3)
        keys = rng.normal(0, 5, size=8000)
        hist = EntropyHistogram(keys, num_buckets=32)
        assert hist.masses.sum() == pytest.approx(8000.0)

    def test_buckets_balance_mass_on_skewed_data(self):
        rng = np.random.default_rng(4)
        keys = rng.exponential(1.0, size=20_000)
        entropy_hist = EntropyHistogram(keys, num_buckets=32)
        equi_hist = EquiWidthHistogram(keys, num_buckets=32)
        # Entropy histogram should spread the mass far more evenly.
        assert entropy_hist.masses.std() < equi_hist.masses.std()

    def test_more_accurate_than_equiwidth_on_skewed_data(self):
        rng = np.random.default_rng(5)
        keys = np.concatenate([rng.normal(0, 0.5, size=20_000), rng.uniform(0, 100, size=2000)])
        entropy_hist = EntropyHistogram(keys, num_buckets=24)
        equi_hist = EquiWidthHistogram(keys, num_buckets=24)
        exact = float(np.count_nonzero((keys >= -1.0) & (keys <= 1.0)))
        entropy_error = abs(entropy_hist.range_estimate(-1.0, 1.0) - exact)
        equi_error = abs(equi_hist.range_estimate(-1.0, 1.0) - exact)
        assert entropy_error <= equi_error

    def test_bucket_entropy_nonnegative(self):
        rng = np.random.default_rng(6)
        hist = EntropyHistogram(rng.uniform(0, 1, size=1000), num_buckets=16)
        assert hist.bucket_entropy >= 0.0

    def test_entropy_close_to_uniform_maximum(self):
        rng = np.random.default_rng(7)
        hist = EntropyHistogram(rng.exponential(1.0, size=30_000), num_buckets=32)
        assert hist.bucket_entropy > 0.9 * np.log(hist.num_buckets)

    def test_more_buckets_lower_error(self):
        rng = np.random.default_rng(8)
        keys = rng.normal(0, 10, size=30_000)
        exact = float(np.count_nonzero((keys >= -5) & (keys <= 5)))
        coarse = EntropyHistogram(keys, num_buckets=8)
        fine = EntropyHistogram(keys, num_buckets=256)
        assert abs(fine.range_estimate(-5, 5) - exact) <= abs(coarse.range_estimate(-5, 5) - exact)

    def test_parameter_validation(self):
        with pytest.raises(DataError):
            EntropyHistogram(np.array([]), num_buckets=4)
        with pytest.raises(NotSupportedError):
            EntropyHistogram(np.array([1.0]), np.array([1.0]), aggregate=Aggregate.MIN)

    def test_sum_mode(self):
        keys = np.linspace(0, 10, 100)
        measures = np.ones(100) * 2.0
        hist = EntropyHistogram(keys, measures, num_buckets=8, aggregate=Aggregate.SUM)
        assert hist.masses.sum() == pytest.approx(200.0)
