"""Tests for the fast construction layer: incremental fitters, the Remez
exchange, the zero-solve GS passes, and the parallel quadtree build.

The LP of Equation 9 is the correctness oracle throughout: the incremental
degree-0/1 fitters and the Remez solver must reproduce its minimax error to
tolerance, and the accelerated Greedy Segmentation must reproduce the
segmentations of the LP-per-probe baseline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import QuadTreeConfig
from repro.datasets import osm_points
from repro.errors import FittingError
from repro.fitting import (
    IncrementalConstantFitter,
    IncrementalLinearFitter,
    build_quadtree_surface,
    dp_segmentation,
    fit_incremental_polynomial,
    fit_minimax_polynomial,
    greedy_segmentation,
    longest_feasible_prefix,
)
from repro.fitting.quadtree import quadtree_build_signature
from repro.functions.cumulative2d import build_cumulative_2d


def _error_close(a: float, b: float, scale: float = 1.0) -> bool:
    return abs(a - b) <= 1e-6 * max(1.0, abs(a), abs(b)) + 1e-9 * max(1.0, scale)


def _random_function(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.uniform(0.0, 1000.0, n))
    keys += np.arange(n) * 1e-9
    values = np.cumsum(rng.uniform(0.0, 50.0, n))
    return keys, values


# Monotone random functions for the property tests; values are cumulative
# sums (the shape GS actually segments) and keys may contain exact ties.
_datasets = st.integers(min_value=3, max_value=40).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=0, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        ),
    )
)


def _make_function(raw_keys, raw_steps, keep_ties: bool):
    # Quantize keys to a 1/64 grid: this *creates* coincident keys (the tie
    # handling under test) while keeping every key gap representable — raw
    # hypothesis floats include spans like 5e-324 whose interpolating slope
    # overflows double precision, a regime where the LP baseline itself
    # breaks down and no boundary comparison is meaningful.
    keys = np.sort(np.round(np.asarray(raw_keys, dtype=np.float64) * 64.0) / 64.0)
    if not keep_ties:
        keys = keys + np.arange(keys.size) * 1e-7
    values = np.cumsum(np.abs(np.asarray(raw_steps, dtype=np.float64)))
    return keys, values


class TestIncrementalFittersMatchLP:
    @pytest.mark.parametrize("degree", [0, 1])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_lp_error_on_random_monotone_data(self, degree, seed):
        keys, values = _random_function(80, seed)
        incremental = fit_incremental_polynomial(keys, values, degree)
        lp = fit_minimax_polynomial(keys, values, degree, solver="lp")
        assert _error_close(incremental.max_error, lp.max_error, values[-1])

    @settings(max_examples=40, deadline=None)
    @given(data=_datasets, degree=st.integers(min_value=0, max_value=1),
           keep_ties=st.booleans())
    def test_matches_lp_error_property(self, data, degree, keep_ties):
        keys, values = _make_function(*data, keep_ties=keep_ties)
        incremental = fit_incremental_polynomial(keys, values, degree)
        lp = fit_minimax_polynomial(keys, values, degree, solver="lp")
        scale = float(np.max(np.abs(values))) if values.size else 1.0
        # One-sided by design: the hull fitter is exact, so it can only ever
        # *beat* the LP (by the LP's own conditioning noise), never lose.
        assert incremental.max_error <= lp.max_error + 1e-6 * max(1.0, scale)
        # Every reported error is achieved under Horner evaluation, so the
        # exact fitter cannot under-report either.
        residual = np.max(np.abs(values - np.asarray(incremental.polynomial(keys))))
        assert residual <= incremental.max_error + 1e-9 * max(1.0, scale)

    def test_degenerate_span_single_key(self):
        keys = np.full(7, 42.0)
        values = np.array([0.0, 5.0, 1.0, 9.0, 3.0, 9.0, 2.0])
        for degree in (0, 1):
            fit = fit_incremental_polynomial(keys, values, degree)
            assert fit.max_error == pytest.approx(4.5)

    def test_coincident_keys_mixed(self):
        keys = np.array([0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 5.0])
        values = np.array([0.0, 1.0, 3.0, 2.0, 4.0, 4.0, 10.0])
        for degree in (0, 1):
            incremental = fit_incremental_polynomial(keys, values, degree)
            lp = fit_minimax_polynomial(keys, values, degree, solver="lp")
            assert _error_close(incremental.max_error, lp.max_error)

    def test_unsorted_input_accepted(self):
        rng = np.random.default_rng(9)
        keys = rng.uniform(0, 100, 50)
        values = rng.uniform(0, 10, 50)
        incremental = fit_incremental_polynomial(keys, values, 1)
        lp = fit_minimax_polynomial(keys, values, 1, solver="lp")
        assert _error_close(incremental.max_error, lp.max_error)

    def test_rejects_higher_degree(self):
        with pytest.raises(FittingError):
            fit_incremental_polynomial(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 2)

    def test_linear_fitter_rejects_unsorted_appends(self):
        fitter = IncrementalLinearFitter()
        fitter.append(1.0, 1.0)
        with pytest.raises(FittingError):
            fitter.append(0.5, 2.0)

    def test_constant_fitter_running_error(self):
        fitter = IncrementalConstantFitter()
        errors = []
        for y in (3.0, 7.0, 1.0, 5.0):
            fitter.append(0.0, y)
            errors.append(fitter.error())
        assert errors == [0.0, 2.0, 3.0, 3.0]
        assert fitter.error_with(11.0) == 5.0
        assert fitter.error() == 3.0  # error_with does not mutate


class TestRemezMatchesLP:
    @pytest.mark.parametrize("degree", [2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_lp_error(self, degree, seed):
        keys, values = _random_function(150, seed)
        remez = fit_minimax_polynomial(keys, values, degree, solver="remez")
        lp = fit_minimax_polynomial(keys, values, degree, solver="lp")
        assert _error_close(remez.max_error, lp.max_error, values[-1])

    @settings(max_examples=25, deadline=None)
    @given(data=_datasets, degree=st.integers(min_value=2, max_value=3))
    def test_matches_lp_error_property(self, data, degree):
        keys, values = _make_function(*data, keep_ties=False)
        remez = fit_minimax_polynomial(keys, values, degree, solver="remez")
        lp = fit_minimax_polynomial(keys, values, degree, solver="lp")
        scale = float(np.max(np.abs(values))) if values.size else 1.0
        # One-sided: on badly conditioned references the LP itself can be the
        # suboptimal side (the exchange's interpolation fast path wins), so
        # the invariant is "never worse than the LP", with equality to
        # tolerance on well-posed inputs (covered by the seeded tests above).
        assert remez.max_error <= lp.max_error + 1e-5 * max(1.0, scale)

    def test_known_chebyshev_solution(self):
        # Best degree-2 approximation of x^3 on a dense symmetric grid: the
        # equioscillation error is 1/4 after mapping to [-1, 1].
        keys = np.linspace(-1.0, 1.0, 501)
        fit = fit_minimax_polynomial(keys, keys**3, degree=2, solver="remez")
        assert fit.max_error == pytest.approx(0.25, abs=1e-4)

    def test_coincident_keys_fall_back_to_lp(self):
        keys = np.array([0.0, 1.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        values = np.array([0.0, 2.0, 4.0, 5.0, 5.5, 8.0, 13.0])
        remez = fit_minimax_polynomial(keys, values, degree=2, solver="remez")
        lp = fit_minimax_polynomial(keys, values, degree=2, solver="lp")
        assert _error_close(remez.max_error, lp.max_error)


class TestScannerMatchesLPBoundaries:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_prefix_boundary_is_exact(self, seed):
        keys, values = _random_function(200, seed)
        delta = 40.0
        stop = longest_feasible_prefix(keys.tolist(), values.tolist(), 0, keys.size, delta)
        feasible = fit_minimax_polynomial(keys[:stop], values[:stop], 1, solver="lp")
        assert feasible.max_error <= delta + 1e-9
        if stop < keys.size:
            infeasible = fit_minimax_polynomial(keys[: stop + 1], values[: stop + 1], 1, solver="lp")
            assert infeasible.max_error > delta - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(data=_datasets, degree=st.integers(min_value=0, max_value=1),
           delta=st.floats(min_value=0.5, max_value=120.0))
    def test_gs_identical_to_lp_baseline(self, data, degree, delta):
        keys, values = _make_function(*data, keep_ties=False)
        # Nudge delta off exactly representable ties so both solvers see the
        # same side of every feasibility comparison.
        delta = delta * 1.0000061 + 0.0173
        fast = greedy_segmentation(keys, values, delta=delta, degree=degree)
        baseline = greedy_segmentation(
            keys, values, delta=delta, degree=degree, solver="lp", early_accept=False
        )
        assert [s.stop for s in fast] == [s.stop for s in baseline]
        assert all(s.max_error <= delta + 1e-6 for s in fast)

    @settings(max_examples=20, deadline=None)
    @given(data=_datasets, delta=st.floats(min_value=0.5, max_value=120.0))
    def test_gs_with_coincident_keys(self, data, delta):
        keys, values = _make_function(*data, keep_ties=True)
        delta = delta * 1.0000061 + 0.0173
        fast = greedy_segmentation(keys, values, delta=delta, degree=1)
        baseline = greedy_segmentation(
            keys, values, delta=delta, degree=1, solver="lp", early_accept=False
        )
        assert [s.stop for s in fast] == [s.stop for s in baseline]
        assert fast[0].start == 0 and fast[-1].stop == keys.size
        for previous, current in zip(fast, fast[1:]):
            assert current.start == previous.stop

    @pytest.mark.parametrize("degree", [2, 3])
    def test_gs_degree2_equal_counts_and_budget(self, degree):
        keys, values = _random_function(400, seed=5)
        delta = 25.0
        fast = greedy_segmentation(keys, values, delta=delta, degree=degree)
        baseline = greedy_segmentation(
            keys, values, delta=delta, degree=degree, solver="lp", early_accept=False
        )
        assert len(fast) == len(baseline)
        assert all(s.max_error <= delta + 1e-9 for s in fast)

    def test_early_accept_does_not_change_boundaries(self):
        keys, values = _random_function(300, seed=6)
        with_cert = greedy_segmentation(keys, values, delta=30.0, degree=2)
        without_cert = greedy_segmentation(
            keys, values, delta=30.0, degree=2, early_accept=False
        )
        assert [s.stop for s in with_cert] == [s.stop for s in without_cert]

    def test_subnormal_keys_regression(self):
        # A degenerately scaled interpolation incumbent evaluates to NaN far
        # outside its span; the early-accept certificate must treat that as a
        # failure, not a pass (Python's max(0.0, nan) returns 0.0).
        keys = np.sort(
            np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 388.0, 1.5, 4.3e-306, 2.2e-313])
        )
        values = np.zeros_like(keys)
        segments = greedy_segmentation(keys, values, delta=10.0, degree=2)
        for segment in segments:
            inside = keys[segment.start: segment.stop]
            evaluated = np.asarray(segment.polynomial(inside))
            assert np.all(np.isfinite(evaluated))
            assert np.max(np.abs(evaluated)) <= 10.0 + 1e-9

    def test_dp_matches_gs_on_moderate_input(self):
        # Also exercises the O(n) fit retention: 300 points would hold ~45k
        # cached fits under the old O(n^2) dict.
        keys, values = _random_function(300, seed=7)
        delta = 60.0
        gs = greedy_segmentation(keys, values, delta=delta, degree=1)
        dp = dp_segmentation(keys, values, delta=delta, degree=1)
        assert len(gs) == len(dp)
        assert all(s.max_error <= delta + 1e-9 for s in dp)


class TestParallelQuadtreeBuild:
    @pytest.fixture(scope="class")
    def sampled_grid(self):
        xs, ys = osm_points(6000, seed=13)
        exact = build_cumulative_2d(xs, ys)
        return exact.sample_grid(resolution=64)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_build_bit_identical(self, sampled_grid, executor):
        grid_x, grid_y, grid_cf = sampled_grid
        serial = build_quadtree_surface(
            grid_x, grid_y, grid_cf, QuadTreeConfig(delta=200.0)
        )
        parallel = build_quadtree_surface(
            grid_x,
            grid_y,
            grid_cf,
            QuadTreeConfig(delta=200.0, build_executor=executor, build_workers=2),
        )
        assert quadtree_build_signature(serial) == quadtree_build_signature(parallel)

    def test_sliced_sampling_matches_masked_sampling(self, sampled_grid):
        grid_x, grid_y, grid_cf = sampled_grid
        from repro.fitting.quadtree import _cell_samples

        rng = np.random.default_rng(3)
        for _ in range(50):
            a, b = np.sort(rng.uniform(grid_x[0], grid_x[-1], 2))
            c, d = np.sort(rng.uniform(grid_y[0], grid_y[-1], 2))
            us, vs, cf = _cell_samples(a, b, c, d, grid_x, grid_y, grid_cf)
            x_mask = (grid_x >= a) & (grid_x <= b)
            y_mask = (grid_y >= c) & (grid_y <= d)
            uu, vv = np.meshgrid(grid_x[x_mask], grid_y[y_mask], indexing="ij")
            assert np.array_equal(us, uu.ravel())
            assert np.array_equal(vs, vv.ravel())
            assert np.array_equal(cf, grid_cf[np.ix_(x_mask, y_mask)].ravel())


class TestExactBatchSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return osm_points(4000, seed=17)

    def _rectangles(self, xs, ys, n, seed):
        rng = np.random.default_rng(seed)
        ax = rng.uniform(xs.min() - 2, xs.max() + 2, (2, n))
        ay = rng.uniform(ys.min() - 2, ys.max() + 2, (2, n))
        x_lows, x_highs = np.minimum(*ax), np.maximum(*ax)
        y_lows, y_highs = np.minimum(*ay), np.maximum(*ay)
        # Edge cases: full span, empty slivers outside the data, exact hull.
        x_lows[:3] = [xs.min(), xs.max() + 1, xs.min()]
        x_highs[:3] = [xs.max(), xs.max() + 2, xs.min()]
        y_lows[:3] = [ys.min(), ys.min(), ys.min()]
        y_highs[:3] = [ys.max(), ys.max(), ys.max()]
        return x_lows, x_highs, y_lows, y_highs

    def test_count_bit_identical_to_scalar(self, points):
        xs, ys = points
        cumulative = build_cumulative_2d(xs, ys)
        bounds = self._rectangles(xs, ys, 300, seed=23)
        batch = cumulative.range_count_batch(*bounds)
        scalar = np.array(
            [cumulative.range_count(*(b[i] for b in bounds)) for i in range(300)]
        )
        assert np.array_equal(batch, scalar)

    def test_weighted_sum_matches_scalar(self, points):
        xs, ys = points
        weights = np.random.default_rng(29).uniform(0.0, 3.0, xs.size)
        cumulative = build_cumulative_2d(xs, ys, weights=weights)
        bounds = self._rectangles(xs, ys, 300, seed=31)
        batch = cumulative.range_count_batch(*bounds)
        scalar = np.array(
            [cumulative.range_count(*(b[i] for b in bounds)) for i in range(300)]
        )
        assert np.allclose(batch, scalar)

    def test_duplicate_coordinates(self):
        xs = np.array([1.0, 1.0, 1.0, 2.0, 2.0, 3.0])
        ys = np.array([5.0, 5.0, 1.0, 5.0, 2.0, 5.0])
        cumulative = build_cumulative_2d(xs, ys)
        bounds = (
            np.array([1.0, 1.0, 0.0, 2.0]),
            np.array([1.0, 3.0, 4.0, 2.0]),
            np.array([5.0, 5.0, 0.0, 2.0]),
            np.array([5.0, 5.0, 9.0, 5.0]),
        )
        batch = cumulative.range_count_batch(*bounds)
        scalar = np.array(
            [cumulative.range_count(*(b[i] for b in bounds)) for i in range(4)]
        )
        assert np.array_equal(batch, scalar)


class TestCorridorScannerResume:
    """The resumable scanner must be indistinguishable from one-shot scans."""

    @settings(max_examples=40, deadline=None)
    @given(data=_datasets, delta=st.floats(min_value=0.5, max_value=120.0),
           split=st.integers(min_value=0, max_value=39))
    def test_split_extend_equals_one_shot(self, data, delta, split):
        from repro.fitting import CorridorScanner

        raw_keys, raw_values = data
        keys = np.unique(np.asarray(raw_keys, dtype=np.float64))
        if keys.size < 1:
            return
        values = np.cumsum(np.asarray(raw_values[: keys.size], dtype=np.float64))
        keys = keys[: values.size]
        ks, vs = keys.tolist(), values.tolist()
        n = len(ks)
        one_shot = longest_feasible_prefix(ks, vs, 0, n, delta)

        cut = min(split % (n + 1), n)
        scanner = CorridorScanner(delta)
        first = scanner.extend(ks, vs, 0, cut)
        if first < cut:
            # Infeasibility inside the first chunk: identical stop, and the
            # scanner refuses to continue.
            assert first == one_shot
            assert not scanner.alive
            with pytest.raises(FittingError):
                scanner.extend(ks, vs, first, n)
        else:
            resumed = scanner.extend(ks, vs, cut, n)
            assert resumed == one_shot

    def test_resume_across_many_chunks(self):
        from repro.fitting import CorridorScanner

        keys, values = _random_function(400, seed=77)
        ks, vs = keys.tolist(), values.tolist()
        delta = 40.0
        one_shot = longest_feasible_prefix(ks, vs, 0, len(ks), delta)
        scanner = CorridorScanner(delta)
        position = 0
        result = len(ks)
        for chunk_end in list(range(13, len(ks), 13)) + [len(ks)]:
            stop = scanner.extend(ks, vs, position, chunk_end)
            if stop < chunk_end:
                result = stop
                break
            position = chunk_end
        assert result == one_shot
