"""Tests for sampling-based estimators (S2 and S-tree)."""

import numpy as np
import pytest

from repro import Aggregate
from repro.baselines import SampledBTree, SequentialSampler
from repro.errors import DataError, NotSupportedError, QueryError


class TestSequentialSampler:
    @pytest.fixture()
    def keys(self):
        rng = np.random.default_rng(0)
        return rng.uniform(0, 100, size=20_000)

    def test_estimate_close_for_large_ranges(self, keys):
        sampler = SequentialSampler(keys, relative_error=0.05, confidence=0.9, seed=1)
        exact = float(np.count_nonzero((keys >= 10) & (keys <= 90)))
        estimate = sampler.range_estimate(10.0, 90.0)
        assert abs(estimate - exact) / exact < 0.15

    def test_sum_estimate(self, keys):
        measures = np.ones_like(keys) * 2.0
        sampler = SequentialSampler(keys, measures, relative_error=0.05, seed=2)
        exact = 2.0 * np.count_nonzero((keys >= 20) & (keys <= 80))
        estimate = sampler.range_estimate(20.0, 80.0, Aggregate.SUM)
        assert abs(estimate - exact) / exact < 0.15

    def test_two_key_estimate(self):
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 10, size=20_000)
        ys = rng.uniform(0, 10, size=20_000)
        sampler = SequentialSampler(xs, second_keys=ys, relative_error=0.05, seed=4)
        exact = np.count_nonzero((xs >= 2) & (xs <= 8) & (ys >= 2) & (ys <= 8))
        estimate = sampler.rectangle_estimate(2.0, 8.0, 2.0, 8.0)
        assert abs(estimate - exact) / exact < 0.2

    def test_two_key_requires_second_keys(self, keys):
        sampler = SequentialSampler(keys)
        with pytest.raises(NotSupportedError):
            sampler.rectangle_estimate(0.0, 1.0, 0.0, 1.0)

    def test_max_not_supported(self, keys):
        sampler = SequentialSampler(keys)
        with pytest.raises(NotSupportedError):
            sampler.range_estimate(0.0, 1.0, Aggregate.MAX)

    def test_sample_count_grows_for_selective_queries(self, keys):
        sampler = SequentialSampler(keys, relative_error=0.1, seed=5, max_fraction=0.5)
        broad = sampler.sampled_records_for(0.0, 100.0)
        narrow = sampler.sampled_records_for(49.0, 50.0)
        assert narrow >= broad

    def test_invalid_range(self, keys):
        sampler = SequentialSampler(keys)
        with pytest.raises(QueryError):
            sampler.range_estimate(5.0, 1.0)

    def test_parameter_validation(self, keys):
        with pytest.raises(DataError):
            SequentialSampler(keys, relative_error=0.0)
        with pytest.raises(DataError):
            SequentialSampler(keys, confidence=1.5)
        with pytest.raises(DataError):
            SequentialSampler(keys, batch_size=0)
        with pytest.raises(DataError):
            SequentialSampler(keys, max_fraction=0.0)
        with pytest.raises(DataError):
            SequentialSampler(np.array([]))


class TestSampledBTree:
    @pytest.fixture()
    def keys(self):
        rng = np.random.default_rng(6)
        return rng.uniform(0, 1000, size=50_000)

    def test_estimate_close_for_large_ranges(self, keys):
        stree = SampledBTree(keys, sample_fraction=0.05, seed=7)
        exact = float(np.count_nonzero((keys >= 100) & (keys <= 900)))
        estimate = stree.range_estimate(100.0, 900.0)
        assert abs(estimate - exact) / exact < 0.1

    def test_scale_factor(self, keys):
        stree = SampledBTree(keys, sample_fraction=0.1, seed=8)
        assert stree.scale == pytest.approx(10.0, rel=0.01)
        assert stree.sample_fraction == 0.1

    def test_full_sample_is_exact(self):
        rng = np.random.default_rng(9)
        keys = rng.uniform(0, 10, size=500)
        stree = SampledBTree(keys, sample_fraction=1.0, seed=10)
        exact = float(np.count_nonzero((keys >= 2) & (keys <= 8)))
        assert stree.range_estimate(2.0, 8.0) == pytest.approx(exact)

    def test_sum_estimate(self, keys):
        measures = np.full_like(keys, 3.0)
        stree = SampledBTree(keys, measures, sample_fraction=0.05, seed=11)
        exact = 3.0 * np.count_nonzero((keys >= 100) & (keys <= 900))
        estimate = stree.range_estimate(100.0, 900.0, Aggregate.SUM)
        assert abs(estimate - exact) / exact < 0.15

    def test_max_not_supported(self, keys):
        stree = SampledBTree(keys, sample_fraction=0.01)
        with pytest.raises(NotSupportedError):
            stree.range_estimate(0.0, 1.0, Aggregate.MAX)

    def test_parameter_validation(self, keys):
        with pytest.raises(DataError):
            SampledBTree(keys, sample_fraction=0.0)
        with pytest.raises(DataError):
            SampledBTree(np.array([]))
        with pytest.raises(DataError):
            SampledBTree(keys, np.array([1.0]))

    def test_size_smaller_than_full_tree(self, keys):
        small = SampledBTree(keys, sample_fraction=0.01, seed=12)
        large = SampledBTree(keys, sample_fraction=0.2, seed=12)
        assert small.size_in_bytes() < large.size_in_bytes()
