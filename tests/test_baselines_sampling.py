"""Tests for sampling-based estimators (S2 and S-tree)."""

import numpy as np
import pytest

from repro import Aggregate
from repro.baselines import SampledBTree, SequentialSampler
from repro.errors import DataError, NotSupportedError, QueryError


class TestSequentialSampler:
    @pytest.fixture()
    def keys(self):
        rng = np.random.default_rng(0)
        return rng.uniform(0, 100, size=20_000)

    def test_estimate_close_for_large_ranges(self, keys):
        sampler = SequentialSampler(keys, relative_error=0.05, confidence=0.9, seed=1)
        exact = float(np.count_nonzero((keys >= 10) & (keys <= 90)))
        estimate = sampler.range_estimate(10.0, 90.0)
        assert abs(estimate - exact) / exact < 0.15

    def test_sum_estimate(self, keys):
        measures = np.ones_like(keys) * 2.0
        sampler = SequentialSampler(keys, measures, relative_error=0.05, seed=2)
        exact = 2.0 * np.count_nonzero((keys >= 20) & (keys <= 80))
        estimate = sampler.range_estimate(20.0, 80.0, Aggregate.SUM)
        assert abs(estimate - exact) / exact < 0.15

    def test_two_key_estimate(self):
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 10, size=20_000)
        ys = rng.uniform(0, 10, size=20_000)
        sampler = SequentialSampler(xs, second_keys=ys, relative_error=0.05, seed=4)
        exact = np.count_nonzero((xs >= 2) & (xs <= 8) & (ys >= 2) & (ys <= 8))
        estimate = sampler.rectangle_estimate(2.0, 8.0, 2.0, 8.0)
        assert abs(estimate - exact) / exact < 0.2

    def test_two_key_requires_second_keys(self, keys):
        sampler = SequentialSampler(keys)
        with pytest.raises(NotSupportedError):
            sampler.rectangle_estimate(0.0, 1.0, 0.0, 1.0)

    def test_max_not_supported(self, keys):
        sampler = SequentialSampler(keys)
        with pytest.raises(NotSupportedError):
            sampler.range_estimate(0.0, 1.0, Aggregate.MAX)

    def test_sample_count_grows_for_selective_queries(self, keys):
        sampler = SequentialSampler(keys, relative_error=0.1, seed=5, max_fraction=0.5)
        broad = sampler.sampled_records_for(0.0, 100.0)
        narrow = sampler.sampled_records_for(49.0, 50.0)
        assert narrow >= broad

    def test_invalid_range(self, keys):
        sampler = SequentialSampler(keys)
        with pytest.raises(QueryError):
            sampler.range_estimate(5.0, 1.0)

    def test_parameter_validation(self, keys):
        with pytest.raises(DataError):
            SequentialSampler(keys, relative_error=0.0)
        with pytest.raises(DataError):
            SequentialSampler(keys, confidence=1.5)
        with pytest.raises(DataError):
            SequentialSampler(keys, batch_size=0)
        with pytest.raises(DataError):
            SequentialSampler(keys, max_fraction=0.0)
        with pytest.raises(DataError):
            SequentialSampler(np.array([]))


class TestTwoPassBatch:
    """The vectorized two-pass stopping rule vs the sequential oracle."""

    @pytest.fixture()
    def keys(self):
        rng = np.random.default_rng(20)
        return np.sort(rng.uniform(0, 1000, size=100_000))

    @pytest.fixture()
    def workload(self, keys):
        rng = np.random.default_rng(21)
        lows = rng.uniform(0, 700, size=150)
        highs = lows + rng.uniform(100, 300, size=150)
        exact = (
            np.searchsorted(keys, highs, side="right")
            - np.searchsorted(keys, lows, side="left")
        ).astype(np.float64)
        return lows, highs, exact

    def test_count_guarantee_holds_at_confidence(self, keys, workload):
        """Violation rate stays within the oracle's probabilistic budget.

        The sequential rule promises rel <= 0.05 with probability 0.9; the
        two-pass variant targets the same, so over 150 queries the observed
        violation fraction must stay comfortably below 1 - confidence
        (0.1) plus sampling slack.
        """
        lows, highs, exact = workload
        sampler = SequentialSampler(
            keys, relative_error=0.05, confidence=0.9, batch_size=512, seed=22
        )
        estimates = sampler.range_estimate_batch_two_pass(lows, highs)
        relative = np.abs(estimates - exact) / exact
        assert float((relative > 0.05).mean()) <= 0.15

    def test_sum_guarantee_holds(self, keys, workload):
        lows, highs, exact = workload
        rng = np.random.default_rng(23)
        measures = rng.uniform(1.0, 5.0, size=keys.size)
        sampler = SequentialSampler(
            keys, measures, relative_error=0.05, confidence=0.9,
            batch_size=512, seed=24,
        )
        estimates = sampler.range_estimate_batch_two_pass(
            lows, highs, Aggregate.SUM
        )
        prefix = np.concatenate(([0.0], np.cumsum(measures)))
        exact_sums = (
            prefix[np.searchsorted(keys, highs, side="right")]
            - prefix[np.searchsorted(keys, lows, side="left")]
        )
        relative = np.abs(estimates - exact_sums) / exact_sums
        assert float((relative > 0.05).mean()) <= 0.15

    def test_matches_sequential_oracle_accuracy(self, keys, workload):
        """Two-pass errors are in the same band as the per-query loop's."""
        lows, highs, exact = workload
        two_pass = SequentialSampler(
            keys, relative_error=0.05, confidence=0.9, batch_size=512, seed=25
        )
        sequential = SequentialSampler(
            keys, relative_error=0.05, confidence=0.9, batch_size=512, seed=25
        )
        batch = two_pass.range_estimate_batch_two_pass(lows[:30], highs[:30])
        loop = sequential.range_estimate_batch(lows[:30], highs[:30])
        batch_err = np.abs(batch - exact[:30]) / exact[:30]
        loop_err = np.abs(loop - exact[:30]) / exact[:30]
        assert np.median(batch_err) <= max(2.0 * np.median(loop_err), 0.05)

    def test_deterministic_for_fixed_seed(self, keys, workload):
        lows, highs, _ = workload
        first = SequentialSampler(keys, batch_size=256, seed=26)
        second = SequentialSampler(keys, batch_size=256, seed=26)
        assert np.array_equal(
            first.range_estimate_batch_two_pass(lows, highs),
            second.range_estimate_batch_two_pass(lows, highs),
        )

    def test_chunking_does_not_change_memory_model(self, keys, workload):
        """Tiny chunks/blocks answer every query (bounded-memory path)."""
        lows, highs, exact = workload
        sampler = SequentialSampler(
            keys, relative_error=0.1, confidence=0.9, batch_size=256, seed=27
        )
        estimates = sampler.range_estimate_batch_two_pass(
            lows[:20], highs[:20], query_chunk=3, sample_block=128
        )
        assert estimates.shape == (20,)
        relative = np.abs(estimates - exact[:20]) / exact[:20]
        assert float((relative > 0.1).mean()) <= 0.25

    def test_selective_queries_top_up_more(self, keys):
        """The adaptive round draws more for hard (selective) queries."""
        sampler = SequentialSampler(
            keys, relative_error=0.05, confidence=0.9, batch_size=256,
            max_fraction=0.5, seed=28,
        )
        # One easy (broad) and one hard (narrow) query: the narrow one's
        # pilot interval is far from closing, so its estimate must ride a
        # much larger share of the shared pool.  Observable via accuracy:
        # both still land inside the (loose) guarantee band.
        estimates = sampler.range_estimate_batch_two_pass(
            np.array([0.0, 499.0]), np.array([1000.0, 501.0])
        )
        exact_broad = float(keys.size)
        exact_narrow = float(
            np.count_nonzero((keys >= 499.0) & (keys <= 501.0))
        )
        assert abs(estimates[0] - exact_broad) / exact_broad <= 0.05
        assert abs(estimates[1] - exact_narrow) / max(exact_narrow, 1.0) <= 0.5

    def test_max_fraction_caps_the_top_up(self, keys):
        sampler = SequentialSampler(
            keys, relative_error=0.001, confidence=0.99, batch_size=128,
            max_fraction=0.005, seed=29,
        )
        estimates = sampler.range_estimate_batch_two_pass(
            np.array([100.0]), np.array([900.0])
        )
        assert np.all(np.isfinite(estimates))

    def test_rejects_bad_inputs(self, keys):
        sampler = SequentialSampler(keys, seed=30)
        with pytest.raises(NotSupportedError):
            sampler.range_estimate_batch_two_pass(
                np.array([0.0]), np.array([1.0]), Aggregate.MAX
            )
        with pytest.raises(QueryError):
            sampler.range_estimate_batch_two_pass(
                np.array([0.0, 1.0]), np.array([1.0])
            )
        with pytest.raises(QueryError):
            sampler.range_estimate_batch_two_pass(
                np.array([0.0]), np.array([1.0]), query_chunk=0
            )


class TestSampledBTree:
    @pytest.fixture()
    def keys(self):
        rng = np.random.default_rng(6)
        return rng.uniform(0, 1000, size=50_000)

    def test_estimate_close_for_large_ranges(self, keys):
        stree = SampledBTree(keys, sample_fraction=0.05, seed=7)
        exact = float(np.count_nonzero((keys >= 100) & (keys <= 900)))
        estimate = stree.range_estimate(100.0, 900.0)
        assert abs(estimate - exact) / exact < 0.1

    def test_scale_factor(self, keys):
        stree = SampledBTree(keys, sample_fraction=0.1, seed=8)
        assert stree.scale == pytest.approx(10.0, rel=0.01)
        assert stree.sample_fraction == 0.1

    def test_full_sample_is_exact(self):
        rng = np.random.default_rng(9)
        keys = rng.uniform(0, 10, size=500)
        stree = SampledBTree(keys, sample_fraction=1.0, seed=10)
        exact = float(np.count_nonzero((keys >= 2) & (keys <= 8)))
        assert stree.range_estimate(2.0, 8.0) == pytest.approx(exact)

    def test_sum_estimate(self, keys):
        measures = np.full_like(keys, 3.0)
        stree = SampledBTree(keys, measures, sample_fraction=0.05, seed=11)
        exact = 3.0 * np.count_nonzero((keys >= 100) & (keys <= 900))
        estimate = stree.range_estimate(100.0, 900.0, Aggregate.SUM)
        assert abs(estimate - exact) / exact < 0.15

    def test_max_not_supported(self, keys):
        stree = SampledBTree(keys, sample_fraction=0.01)
        with pytest.raises(NotSupportedError):
            stree.range_estimate(0.0, 1.0, Aggregate.MAX)

    def test_parameter_validation(self, keys):
        with pytest.raises(DataError):
            SampledBTree(keys, sample_fraction=0.0)
        with pytest.raises(DataError):
            SampledBTree(np.array([]))
        with pytest.raises(DataError):
            SampledBTree(keys, np.array([1.0]))

    def test_size_smaller_than_full_tree(self, keys):
        small = SampledBTree(keys, sample_fraction=0.01, seed=12)
        large = SampledBTree(keys, sample_fraction=0.2, seed=12)
        assert small.size_in_bytes() < large.size_in_bytes()
