"""Tests for the two-key PolyFit index."""

import numpy as np
import pytest

from repro import (
    Aggregate,
    Guarantee,
    PolyFit2DIndex,
    RangeQuery2D,
    generate_rectangle_queries,
)
from repro.config import QuadTreeConfig
from repro.errors import GuaranteeNotSatisfiedError, NotSupportedError, QueryError


class TestBuild:
    def test_guarantee_derives_delta(self, osm_small):
        xs, ys = osm_small
        index = PolyFit2DIndex.build(xs, ys, guarantee=Guarantee.absolute(1000.0),
                                     grid_resolution=32)
        assert index.delta == 250.0  # Lemma 6

    def test_explicit_delta(self, osm_small):
        xs, ys = osm_small
        index = PolyFit2DIndex.build(xs, ys, delta=300.0, grid_resolution=32)
        assert index.delta == 300.0

    def test_requires_delta_or_guarantee(self, osm_small):
        xs, ys = osm_small
        with pytest.raises(QueryError):
            PolyFit2DIndex.build(xs, ys)

    def test_relative_guarantee_rejected_at_build(self, osm_small):
        xs, ys = osm_small
        with pytest.raises(QueryError):
            PolyFit2DIndex.build(xs, ys, guarantee=Guarantee.relative(0.01))

    def test_max_aggregate_rejected(self, osm_small):
        xs, ys = osm_small
        with pytest.raises(NotSupportedError):
            PolyFit2DIndex.build(xs, ys, delta=100.0, aggregate=Aggregate.MAX)

    def test_leaf_counts(self, count2d_index):
        assert count2d_index.num_leaves >= 1
        assert 0 <= count2d_index.num_fitted_leaves <= count2d_index.num_leaves

    def test_smaller_delta_more_leaves(self, osm_small):
        xs, ys = osm_small
        loose = PolyFit2DIndex.build(xs, ys, delta=800.0, grid_resolution=32)
        tight = PolyFit2DIndex.build(xs, ys, delta=80.0, grid_resolution=32)
        assert tight.num_leaves >= loose.num_leaves

    def test_size_in_bytes_positive(self, count2d_index):
        assert count2d_index.size_in_bytes() > 0

    def test_config_recorded(self, osm_small):
        xs, ys = osm_small
        config = QuadTreeConfig(delta=1.0, max_depth=5, degree=3)
        index = PolyFit2DIndex.build(xs, ys, delta=400.0, config=config, grid_resolution=32)
        assert index.config.delta == 400.0  # overridden by explicit delta
        assert index.config.max_depth == 5
        assert index.config.degree == 3


class TestQueries:
    def test_absolute_guarantee_holds(self, count2d_index, osm_small):
        xs, ys = osm_small
        eps = 1000.0
        queries = generate_rectangle_queries(xs, ys, 60, seed=1)
        for query in queries:
            result = count2d_index.query(query, Guarantee.absolute(eps))
            exact = count2d_index.exact(query)
            assert result.guaranteed
            assert abs(result.value - exact) <= eps + 1e-6

    def test_relative_guarantee_with_fallback(self, count2d_index, osm_small):
        xs, ys = osm_small
        eps = 0.05
        queries = generate_rectangle_queries(xs, ys, 40, seed=2)
        for query in queries:
            result = count2d_index.query(query, Guarantee.relative(eps))
            exact = count2d_index.exact(query)
            if exact > 0:
                assert abs(result.value - exact) / exact <= eps + 1e-9

    def test_small_rectangle_falls_back(self, count2d_index, osm_small):
        xs, ys = osm_small
        tiny = RangeQuery2D(xs[0], xs[0] + 1e-6, ys[0], ys[0] + 1e-6)
        result = count2d_index.query(tiny, Guarantee.relative(0.01))
        assert result.exact_fallback

    def test_full_box_close_to_total(self, count2d_index, osm_small):
        xs, ys = osm_small
        query = RangeQuery2D(xs.min(), xs.max(), ys.min(), ys.max())
        approx = count2d_index.estimate(query)
        assert approx == pytest.approx(xs.size, abs=4 * count2d_index.delta)

    def test_rectangle_outside_domain_near_zero(self, count2d_index, osm_small):
        xs, ys = osm_small
        query = RangeQuery2D(xs.min() - 100.0, xs.min() - 50.0, ys.min(), ys.max())
        assert abs(count2d_index.estimate(query)) <= 4 * count2d_index.delta

    def test_aggregate_mismatch(self, count2d_index):
        with pytest.raises(NotSupportedError):
            count2d_index.estimate(RangeQuery2D(0, 1, 0, 1, Aggregate.SUM))

    def test_error_bound_reported(self, count2d_index):
        result = count2d_index.query(RangeQuery2D(-10, 10, -10, 10))
        assert result.error_bound == pytest.approx(4 * count2d_index.delta)

    def test_require_guarantee_raises(self, count2d_index, osm_small):
        xs, ys = osm_small
        tiny = RangeQuery2D(xs[0], xs[0] + 1e-6, ys[0], ys[0] + 1e-6)
        with pytest.raises(GuaranteeNotSatisfiedError):
            count2d_index.require_guarantee(tiny, Guarantee.relative(0.01))

    def test_require_guarantee_absolute_mismatch(self, count2d_index):
        with pytest.raises(GuaranteeNotSatisfiedError):
            count2d_index.require_guarantee(
                RangeQuery2D(0, 1, 0, 1), Guarantee.absolute(1.0)
            )

    def test_exact_matches_brute_force(self, count2d_index, osm_small):
        xs, ys = osm_small
        rng = np.random.default_rng(3)
        for _ in range(20):
            x1, x2 = np.sort(rng.uniform(xs.min(), xs.max(), size=2))
            y1, y2 = np.sort(rng.uniform(ys.min(), ys.max(), size=2))
            expected = np.count_nonzero((xs >= x1) & (xs <= x2) & (ys >= y1) & (ys <= y2))
            assert count2d_index.exact(RangeQuery2D(x1, x2, y1, y2)) == expected


class TestWeightedSum2D:
    """Two-key SUM support (Section VI: 'other types of range aggregate queries')."""

    def test_sum_requires_measures(self, osm_small):
        xs, ys = osm_small
        with pytest.raises(QueryError):
            PolyFit2DIndex.build(xs, ys, delta=100.0, aggregate=Aggregate.SUM,
                                 grid_resolution=32)

    def test_sum_guarantee_holds(self, osm_small):
        xs, ys = osm_small
        rng = np.random.default_rng(77)
        measures = rng.uniform(0.5, 2.0, size=xs.size)
        eps = 2000.0
        index = PolyFit2DIndex.build(xs, ys, measures,
                                     guarantee=Guarantee.absolute(eps),
                                     aggregate=Aggregate.SUM, grid_resolution=48)
        queries = generate_rectangle_queries(xs, ys, 40, Aggregate.SUM, seed=78)
        for query in queries:
            exact = index.exact(query)
            brute = measures[(xs >= query.x_low) & (xs <= query.x_high)
                             & (ys >= query.y_low) & (ys <= query.y_high)].sum()
            assert exact == pytest.approx(brute)
            assert abs(index.query(query).value - exact) <= eps + 1e-6

    def test_unit_measures_match_count(self, osm_small):
        xs, ys = osm_small
        unit = np.ones(xs.size)
        sum_index = PolyFit2DIndex.build(xs, ys, unit, delta=250.0,
                                         aggregate=Aggregate.SUM, grid_resolution=48)
        count_index = PolyFit2DIndex.build(xs, ys, delta=250.0, grid_resolution=48)
        queries = generate_rectangle_queries(xs, ys, 20, seed=79)
        for query in queries:
            sum_query = RangeQuery2D(query.x_low, query.x_high, query.y_low,
                                     query.y_high, Aggregate.SUM)
            assert sum_index.exact(sum_query) == pytest.approx(count_index.exact(query))
