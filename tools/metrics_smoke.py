#!/usr/bin/env python
"""Metrics smoke: a live server's ``/metrics`` must be valid and complete.

Stands up a real ``ServeServer`` (socket and all) over a WAL-backed
updatable index, drives enough traffic to touch every instrumented layer
(coalesced scalar queries, a cached batch replay, an insert, a compaction),
then asserts:

* ``GET /metrics`` parses cleanly under the library's own
  ``validate_exposition`` (Prometheus text format 0.0.4);
* every layer named in the issue is represented — serve (HTTP +
  coalescer + host), cache, shard, WAL and compaction families all
  appear in the exposition;
* ``GET /healthz`` carries the epoch / version / buffer / WAL-lag
  enrichment and ``GET /slowlog`` answers;
* the ``repro metrics`` CLI renders the same exposition.

Run via ``make metrics-smoke``.  Exit status 0 when the contract holds.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro import Aggregate, UpdatablePolyFitIndex  # noqa: E402
from repro.cli import main  # noqa: E402
from repro.config import FitConfig, IndexConfig, SegmentationConfig  # noqa: E402
from repro.obs.metrics import exposed_metric_names, validate_exposition  # noqa: E402
from repro.serve import (  # noqa: E402
    EngineHost,
    ServeServer,
    health_remote,
    metrics_remote,
    query_batch_remote,
    query_remote,
    request_json,
    slowlog_remote,
)

FAST = IndexConfig(fit=FitConfig(degree=1), segmentation=SegmentationConfig(delta=25.0))

#: One family per instrumented layer; the exposition must cover them all.
REQUIRED_FAMILIES = {
    "serve/http": "repro_http_requests_total",
    "serve/coalescer": "repro_coalescer_served_total",
    "serve/host": "repro_host_pins_total",
    "cache": "repro_cache_hits_total",
    "shard": "repro_shard_exec_seconds",
    "wal": "repro_wal_appends_total",
    "compaction": "repro_compactions_total",
}


def _drive(url: str) -> tuple[str, dict, dict]:
    """Traffic that touches every layer, then the telemetry payloads."""
    for low in (10.0, 200.0, 450.0):
        query_remote(url, low, low + 400.0)
    query_batch_remote(url, [10.0, 20.0], [500.0, 600.0])
    query_batch_remote(url, [10.0, 20.0], [500.0, 600.0])  # cache hit
    request_json(url, "/insert", {"keys": [3.25, 4.75]})
    request_json(url, "/compact", {})
    return metrics_remote(url), health_remote(url), slowlog_remote(url)


def run() -> int:
    keys = np.sort(np.random.default_rng(47).uniform(0.0, 1000.0, size=8000))
    with tempfile.TemporaryDirectory(prefix="metrics-smoke-") as scratch:
        index = UpdatablePolyFitIndex.build(
            keys,
            aggregate=Aggregate.COUNT,
            delta=25.0,
            config=FAST,
            wal_path=Path(scratch) / "serve.wal",
        )
        host = EngineHost(index, cache_size=16, num_shards=2)
        server = ServeServer(host, slow_query_ms=0.0, trace_sample_rate=1.0)

        async def serve_and_drive():
            await server.start(port=0)
            url = f"http://127.0.0.1:{server.port}"
            loop = asyncio.get_running_loop()
            try:
                payloads = await loop.run_in_executor(None, _drive, url)
                cli_status = await loop.run_in_executor(
                    None, main, ["metrics", url]
                )
                return payloads, cli_status
            finally:
                await server.stop()

        (text, health, slowlog), cli_status = asyncio.run(serve_and_drive())

    failures: list[str] = []

    problems = validate_exposition(text)
    if problems:
        failures.append(f"exposition invalid: {problems}")
    names = set(exposed_metric_names(text))
    for layer, family in REQUIRED_FAMILIES.items():
        if family not in names:
            failures.append(f"layer {layer}: family {family} missing from /metrics")

    host_health = health.get("hosts", {}).get("default", {})
    for field in ("epoch", "version", "buffer_size", "wal_lag"):
        if field not in host_health:
            failures.append(f"/healthz missing {field}")
    if health.get("status") != "ok":
        failures.append(f"/healthz status {health.get('status')!r}")

    if slowlog.get("total", 0) < 1:
        failures.append("slowlog empty despite a zero threshold")

    if cli_status != 0:
        failures.append(f"`repro metrics` exited {cli_status}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    print(
        f"metrics smoke OK: {len(names)} families exposed, "
        f"{len(REQUIRED_FAMILIES)} required layers covered, "
        f"healthz enriched, slowlog recorded {slowlog['total']} entries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(run())
