#!/usr/bin/env python
"""fsck smoke: the CLI exit-code contract against a fresh corrupted fixture.

Builds a small codec file, a WAL and a 2-partition fleet directory in a
scratch directory, then drives ``repro fsck`` through the same ``main()``
the console entry point uses:

* all three clean artifacts must pass with exit status 0;
* after one bit flip inside a codec data blob, fsck must exit 1 and name
  the damage (``codec-corrupt``).

Run via ``make fsck-smoke``.  Exit status 0 when the contract holds.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro import Aggregate, IndexFleet, UpdatablePolyFitIndex, save_fleet  # noqa: E402
from repro.cli import main  # noqa: E402
from repro.config import FitConfig, IndexConfig, SegmentationConfig  # noqa: E402
from repro.index.codec import save_index_binary  # noqa: E402
from repro.stream import WriteAheadLog  # noqa: E402
from repro.testing.faults import flip_bit  # noqa: E402

FAST = IndexConfig(fit=FitConfig(degree=1), segmentation=SegmentationConfig(delta=25.0))


def run() -> int:
    keys = np.sort(np.random.default_rng(41).uniform(0.0, 1000.0, size=2000))
    with tempfile.TemporaryDirectory(prefix="fsck-smoke-") as scratch:
        scratch = Path(scratch)

        codec_path = scratch / "index.pfbin"
        index = UpdatablePolyFitIndex.build(
            keys, aggregate=Aggregate.COUNT, delta=25.0, config=FAST
        )
        index.insert(np.array([1.5, 2.5]))
        save_index_binary(index, codec_path)

        wal_path = scratch / "ingest.wal"
        with WriteAheadLog(wal_path) as wal:
            for i in range(4):
                wal.append_insert(np.arange(8, dtype=float) + i)

        fleet_dir = scratch / "fleet"
        fleet = IndexFleet.build(
            keys, None, Aggregate.COUNT, delta=25.0, config=FAST, num_partitions=2
        )
        save_fleet(fleet, fleet_dir)

        print("== fsck over clean artifacts (expect exit 0) ==")
        status = main(["fsck", str(codec_path), str(wal_path), str(fleet_dir)])
        if status != 0:
            print(f"FAIL: clean artifacts reported status {status}", file=sys.stderr)
            return 1

        flip_bit(codec_path, codec_path.stat().st_size // 2)
        print("\n== fsck after one bit flip (expect exit 1) ==")
        status = main(["fsck", str(codec_path)])
        if status != 1:
            print(f"FAIL: corrupted codec reported status {status}", file=sys.stderr)
            return 1

    print("\nfsck smoke OK: clean -> 0, corrupted -> 1")
    return 0


if __name__ == "__main__":
    sys.exit(run())
