#!/usr/bin/env python
"""Docs lint: every link resolves, every benchmark artifact is documented.

Checks, over ``README.md`` and everything under ``docs/``:

* **relative links** — every ``[text](path)`` pointing into the repo
  resolves to an existing file (anchors are stripped; ``http(s):`` and
  ``mailto:`` links are skipped);
* **anchors** — a same-file or cross-file ``#fragment`` must match a
  heading in the target document (GitHub slug rules: lowercase, spaces to
  dashes, punctuation dropped);
* **artifact references** — every ``BENCH_*.json`` name mentioned in the
  docs corresponds to a benchmark that actually emits it (an
  ``ARTIFACT_PATH`` in ``benchmarks/``), and every emitted artifact is
  documented somewhere;
* **code references** — every `` `path/to/file.py` `` span that looks like
  a repo path exists;
* **metric names** — every ``repro_*`` metric registered in ``src/repro/``
  (a ``counter_family``/``gauge_family``/``histogram_family`` call) is
  documented in ``docs/OBSERVABILITY.md``, and every metric name that
  document mentions is actually registered in the code.

Exit status 0 when clean; 1 with one line per problem otherwise.  Run via
``make docs-lint`` (CI runs it on every push).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
ARTIFACT_RE = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")
CODE_PATH_RE = re.compile(r"`((?:src|tests|benchmarks|docs|tools|examples)/[^`\s]+)`")
OBSERVABILITY_DOC = REPO / "docs" / "OBSERVABILITY.md"
# The name literal always sits right after the family constructor's open
# paren (possibly on the next line — \s* spans newlines).
METRIC_FAMILY_RE = re.compile(
    r'(?:counter|gauge|histogram)_family\(\s*"(repro_[a-z0-9_]+)"'
)
METRIC_NAME_RE = re.compile(r"\brepro_[a-z0-9_]+\b")


def _slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug (enough of it for our docs)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _headings(path: Path) -> set[str]:
    return {_slug(m.group(1)) for m in HEADING_RE.finditer(path.read_text())}


def check_links(doc: Path, problems: list[str]) -> None:
    text = doc.read_text()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        if not resolved.exists():
            problems.append(f"{doc.relative_to(REPO)}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _headings(resolved):
                problems.append(
                    f"{doc.relative_to(REPO)}: dead anchor -> {target}"
                )


def check_code_paths(doc: Path, problems: list[str]) -> None:
    for match in CODE_PATH_RE.finditer(doc.read_text()):
        candidate = match.group(1).rstrip("/")
        if not (REPO / candidate).exists():
            problems.append(
                f"{doc.relative_to(REPO)}: referenced path missing -> {candidate}"
            )


def check_artifacts(problems: list[str]) -> None:
    documented: set[str] = set()
    for doc in DOC_FILES:
        documented |= set(ARTIFACT_RE.findall(doc.read_text()))
    emitted: set[str] = set()
    for bench in (REPO / "benchmarks").glob("bench_*.py"):
        emitted |= set(ARTIFACT_RE.findall(bench.read_text()))
    for name in sorted(documented - emitted):
        problems.append(f"docs mention {name} but no benchmark emits it")
    for name in sorted(emitted - documented):
        problems.append(
            f"benchmarks emit {name} but no doc (README.md/docs/) mentions it"
        )


def check_metrics(problems: list[str]) -> None:
    registered: set[str] = set()
    for source in (REPO / "src" / "repro").rglob("*.py"):
        registered |= set(METRIC_FAMILY_RE.findall(source.read_text()))
    if not OBSERVABILITY_DOC.exists():
        if registered:
            problems.append(
                "metrics are registered in src/repro/ but docs/OBSERVABILITY.md "
                "is missing"
            )
        return
    documented = set(METRIC_NAME_RE.findall(OBSERVABILITY_DOC.read_text()))
    for name in sorted(registered - documented):
        problems.append(
            f"metric {name} is registered in the code but not documented in "
            "docs/OBSERVABILITY.md"
        )
    for name in sorted(documented - registered):
        problems.append(
            f"docs/OBSERVABILITY.md documents {name} but no family in "
            "src/repro/ registers it"
        )


def main() -> int:
    problems: list[str] = []
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"missing doc file: {doc.relative_to(REPO)}")
            continue
        check_links(doc, problems)
        check_code_paths(doc, problems)
    check_artifacts(problems)
    check_metrics(problems)
    if problems:
        print(f"docs lint: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docs lint: {len(DOC_FILES)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
